"""Circuit-breaker state machine, deterministic probe schedule, metrics.

The fake clock walks the breaker through every edge of the
closed/open/half-open diagram exactly; the determinism tests pin the
hashed-jitter contract — two breakers with the same name and policy
trip, probe and recover on the identical schedule.
"""

import pytest

from repro import build_manifest, telemetry
from repro.exceptions import BreakerOpenError, ConfigurationError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _breaker(clock, threshold=2, window=4, probe=1.0, backoff=2.0):
    return CircuitBreaker(
        "test.dep",
        policy=BreakerPolicy(
            failure_threshold=threshold,
            window_size=window,
            probe_delay_seconds=probe,
            probe_backoff_factor=backoff,
        ),
        clock=clock,
    )


class TestStateMachine:
    def test_stays_closed_below_threshold(self):
        breaker = _breaker(FakeClock())
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_open_at_threshold(self):
        breaker = _breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        with pytest.raises(BreakerOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.name == "test.dep"
        assert excinfo.value.retry_after_seconds > 0

    def test_successes_age_failures_out_of_the_window(self):
        breaker = _breaker(FakeClock(), threshold=2, window=3)
        breaker.record_failure()
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # old failure evicted; only 1 in window
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = _breaker(clock, probe=1.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(2.0)  # past any jittered probe delay
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused

    def test_probe_success_closes_and_clears(self):
        clock = FakeClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_count == 0
        assert breaker.retry_after_seconds() == 0.0

    def test_probe_failure_reopens_with_longer_delay(self):
        clock = FakeClock()
        breaker = _breaker(clock, probe=1.0, backoff=2.0)
        breaker.record_failure()
        breaker.record_failure()
        first_delay = breaker.retry_after_seconds()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        second_delay = breaker.retry_after_seconds()
        # Exponential backoff net of +/-10% jitter: strictly longer.
        assert second_delay > first_delay

    def test_call_wraps_outcome_recording(self):
        breaker = _breaker(FakeClock(), threshold=1)
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        assert breaker.state == OPEN
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: 42)


class TestDeterminism:
    def test_probe_schedule_is_a_pure_function_of_name_and_count(self):
        policy = BreakerPolicy()
        for count in (1, 2, 5):
            assert policy.probe_delay("a", count) == policy.probe_delay(
                "a", count
            )
        assert policy.probe_delay("a", 1) != policy.probe_delay("b", 1)

    def test_jitter_stays_within_fraction(self):
        policy = BreakerPolicy(
            probe_delay_seconds=1.0,
            probe_backoff_factor=1.0,
            jitter_fraction=0.1,
        )
        for count in range(1, 20):
            delay = policy.probe_delay("dep", count)
            assert 0.9 <= delay <= 1.1

    def test_two_breakers_replay_identical_transitions(self):
        logs = []
        for _ in range(2):
            clock = FakeClock()
            breaker = _breaker(clock)
            breaker.record_failure()
            breaker.record_failure()
            clock.advance(2.0)
            breaker.allow()
            breaker.record_failure()
            clock.advance(4.0)
            breaker.allow()
            breaker.record_success()
            logs.append(breaker.transitions())
        assert logs[0] == logs[1]
        assert [t["to"] for t in logs[0]] == [
            OPEN, HALF_OPEN, OPEN, HALF_OPEN, CLOSED,
        ]

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=5, window_size=4)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(probe_delay_seconds=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(jitter_fraction=1.5)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(
                probe_delay_seconds=5.0, max_probe_delay_seconds=1.0
            )


class TestTelemetry:
    def test_transitions_and_rejections_land_in_manifest(self):
        clock = FakeClock()
        with telemetry() as registry:
            breaker = _breaker(clock)
            breaker.record_failure()
            breaker.record_failure()
            breaker.allow()  # rejected while open
        manifest = build_manifest(registry)["breaker"]
        assert manifest["transition_totals"] == {"test.dep": 1}
        assert manifest["rejected"] == {"test.dep": 1}
        (transition,) = manifest["transitions"]
        assert transition["breaker"] == "test.dep"
        assert transition["from"] == CLOSED
        assert transition["to"] == OPEN
        assert transition["failures"] == 2
