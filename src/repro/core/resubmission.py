"""Blocked-request resubmission: relaxing the paper's assumption 5.

The paper (like Lang et al. and Das-Bhuyan) assumes blocked requests are
*dropped* — each cycle is statistically fresh.  Real processors hold the
blocked request and retry, which raises the offered load above ``r`` and
lowers bandwidth relative to the drop model at moderate rates.  The
Markov-model literature the paper cites (Marsan & Gerla [11], Mudge &
Al-Sadoun [12], Towsley [13]) studies exactly this regime.

This module implements the classical *rate-adjustment* approximation: in
steady state a processor submits a request with some effective
probability ``alpha >= r``; blocked submissions (probability
``1 - P_A``) carry over to the next cycle while free processors generate
new requests at rate ``r``::

    alpha = r * (1 - alpha * (1 - P_A(alpha))) + alpha * (1 - P_A(alpha))

where ``P_A(alpha) = MBW(alpha) / (N * alpha)`` is the acceptance
probability predicted by the paper's closed forms at rate ``alpha``.
The fixed point is found by damped iteration.  Accuracy is validated
against the event-level resubmission simulator
(:class:`repro.simulation.resubmission.ResubmissionSimulator`) in the
test suite — the approximation is classical, not exact, so agreement is
asserted to a few percent.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.core.request_models import RequestModel
from repro.exceptions import ModelError

__all__ = ["ResubmissionEquilibrium", "solve_resubmission_equilibrium"]


@dataclasses.dataclass(frozen=True)
class ResubmissionEquilibrium:
    """Fixed point of the rate-adjustment model.

    Attributes
    ----------
    effective_rate:
        Steady-state per-cycle submission probability ``alpha``.
    bandwidth:
        Predicted memory bandwidth at the adjusted rate.
    acceptance_probability:
        ``P_A`` at the fixed point.
    mean_wait_cycles:
        Expected cycles a request waits before acceptance
        (``1 / P_A - 1`` retries on top of the service cycle).
    iterations:
        Damped iterations used to converge.
    """

    effective_rate: float
    bandwidth: float
    acceptance_probability: float
    mean_wait_cycles: float
    iterations: int


def solve_resubmission_equilibrium(
    model: RequestModel,
    bandwidth_at_rate: Callable[[RequestModel], float],
    tolerance: float = 1e-10,
    max_iterations: int = 500,
    damping: float = 0.5,
) -> ResubmissionEquilibrium:
    """Solve the resubmission fixed point for one network and workload.

    Parameters
    ----------
    model:
        The *new-request* behaviour: pattern plus nominal rate ``r``.
    bandwidth_at_rate:
        Maps a request model (same pattern, adjusted rate) to the
        network's closed-form bandwidth — typically
        ``lambda m: analytic_bandwidth(network, m)``.
    damping:
        Fraction of the new iterate mixed in per step; 0.5 converges for
        every configuration in the paper's ranges.

    Raises
    ------
    ModelError
        If the iteration fails to converge (pathological inputs) or the
        nominal rate is zero (no traffic, equilibrium undefined).
    """
    r = model.rate
    if r <= 0.0:
        raise ModelError("resubmission equilibrium needs a positive rate")
    n = model.n_processors

    alpha = r
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        adjusted = model.with_rate(alpha)
        bandwidth = bandwidth_at_rate(adjusted)
        offered = n * alpha
        acceptance = min(1.0, bandwidth / offered) if offered > 0 else 1.0
        blocked = alpha * (1.0 - acceptance)
        target = r * (1.0 - blocked) + blocked
        target = min(1.0, max(r, target))
        if abs(target - alpha) <= tolerance:
            alpha = target
            break
        alpha = (1.0 - damping) * alpha + damping * target
    else:
        raise ModelError(
            f"resubmission fixed point did not converge in "
            f"{max_iterations} iterations (last alpha={alpha:.6f})"
        )

    adjusted = model.with_rate(alpha)
    bandwidth = bandwidth_at_rate(adjusted)
    offered = n * alpha
    acceptance = min(1.0, bandwidth / offered) if offered > 0 else 1.0
    if acceptance <= 0.0:
        raise ModelError("degenerate equilibrium: nothing is ever accepted")
    return ResubmissionEquilibrium(
        effective_rate=alpha,
        bandwidth=bandwidth,
        acceptance_probability=acceptance,
        mean_wait_cycles=1.0 / acceptance - 1.0,
        iterations=iterations,
    )
