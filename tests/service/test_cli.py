"""``repro-serve``: argument wiring and the serve/shutdown lifecycle."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import disable_telemetry
from repro.service import cli


def test_parser_defaults():
    args = cli.build_parser().parse_args([])
    assert args.host == "127.0.0.1"
    assert args.port == 8035
    assert args.cache_size == 4096
    assert args.batch_size == 64
    assert args.batch_delay == 0.0
    assert args.rate_limit is None
    assert args.burst == 256
    assert args.max_queue_depth == 1024
    assert args.max_sweep_cells == 512
    assert args.telemetry is None


def test_parser_accepts_all_knobs():
    args = cli.build_parser().parse_args([
        "--host", "0.0.0.0", "--port", "9000", "--cache-size", "0",
        "--batch-size", "8", "--batch-delay", "0.005",
        "--rate-limit", "50", "--burst", "10", "--max-queue-depth", "32",
        "--max-sweep-cells", "64", "--telemetry", "out",
    ])
    assert args.port == 9000
    assert args.cache_size == 0
    assert args.rate_limit == 50.0
    assert args.telemetry == "out"


def test_serve_binds_answers_and_shuts_down(capsys):
    """Drive ``_serve`` on port 0, issue one query, then cancel it."""
    args = cli.build_parser().parse_args([
        "--port", "0", "--rate-limit", "100", "--max-sweep-cells", "16",
    ])

    async def main():
        task = asyncio.ensure_future(cli._serve(args))
        # wait for the listening banner (the bound port is printed)
        while True:
            await asyncio.sleep(0.01)
            out = capsys.readouterr().out
            if "listening" in out:
                port = int(out.rsplit(":", 1)[1])
                break
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        body = json.dumps({"scheme": "full", "N": 8, "B": 4}).encode()
        writer.write(
            b"POST /query HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        head = await reader.readuntil(b"\r\n\r\n")
        length = int([
            line for line in head.decode().split("\r\n")
            if line.lower().startswith("content-length")
        ][0].split(":")[1])
        envelope = json.loads(await reader.readexactly(length))
        writer.close()
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        return envelope

    envelope = asyncio.run(main())
    assert envelope["ok"] is True
    assert envelope["result"]["bandwidth"] > 0.0


def test_main_writes_telemetry_artifacts_on_shutdown(tmp_path, monkeypatch):
    """``main`` with --telemetry lands the manifest trio after serving."""

    async def fake_serve(args):
        raise KeyboardInterrupt  # immediate Ctrl-C

    monkeypatch.setattr(cli, "_serve", fake_serve)
    try:
        code = cli.main(["--telemetry", str(tmp_path)])
    finally:
        disable_telemetry()  # main leaves the process registry live
    assert code == 0
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert "service" in manifest
    assert (tmp_path / "events.jsonl").exists()
    assert (tmp_path / "metrics.prom").exists()


def test_main_without_telemetry_writes_nothing(tmp_path, monkeypatch):
    async def fake_serve(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "_serve", fake_serve)
    assert cli.main([]) == 0
    assert list(tmp_path.iterdir()) == []
