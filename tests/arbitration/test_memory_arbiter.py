"""Tests for stage-one memory arbitration."""

import numpy as np
import pytest

from repro.arbitration.memory_arbiter import (
    MemoryArbiter,
    resolve_memory_contention,
)
from repro.exceptions import SimulationError


class TestMemoryArbiter:
    def test_no_requesters_returns_none(self, rng):
        assert MemoryArbiter(0).select([], rng) is None

    def test_single_requester_wins(self, rng):
        assert MemoryArbiter(0).select([7], rng) == 7

    def test_winner_is_among_requesters(self, rng):
        arbiter = MemoryArbiter(3)
        for _ in range(50):
            assert arbiter.select([2, 5, 9], rng) in (2, 5, 9)

    def test_selection_is_roughly_uniform(self, rng):
        arbiter = MemoryArbiter(0)
        counts = {1: 0, 2: 0, 3: 0}
        trials = 6000
        for _ in range(trials):
            counts[arbiter.select([1, 2, 3], rng)] += 1
        for winner in counts.values():
            assert winner / trials == pytest.approx(1 / 3, abs=0.05)

    def test_rejects_negative_module(self):
        with pytest.raises(SimulationError):
            MemoryArbiter(-1)

    def test_repr(self):
        assert "module=4" in repr(MemoryArbiter(4))


class TestResolveMemoryContention:
    def test_one_winner_per_requested_module(self, rng):
        requests = [(0, 2), (1, 2), (2, 5), (3, 5), (4, 1)]
        winners = resolve_memory_contention(requests, 8, rng)
        assert set(winners) == {1, 2, 5}
        assert winners[2] in (0, 1)
        assert winners[5] in (2, 3)
        assert winners[1] == 4

    def test_empty_cycle(self, rng):
        assert resolve_memory_contention([], 4, rng) == {}

    def test_rejects_out_of_range_module(self, rng):
        with pytest.raises(SimulationError, match="outside"):
            resolve_memory_contention([(0, 9)], 4, rng)

    def test_all_processors_same_module(self, rng):
        winners = resolve_memory_contention(
            [(p, 0) for p in range(10)], 4, rng
        )
        assert set(winners) == {0}
        assert 0 <= winners[0] < 10

    def test_winner_distribution_uniform(self, rng):
        tallies = np.zeros(4)
        for _ in range(4000):
            winners = resolve_memory_contention(
                [(p, 0) for p in range(4)], 2, rng
            )
            tallies[winners[0]] += 1
        assert np.allclose(tallies / tallies.sum(), 0.25, atol=0.03)
