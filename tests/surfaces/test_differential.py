"""Differential acceptance: surfaces never change an on-grid bit.

A seeded generator builds a randomized universe of single-cell queries
across all five schemes, both request models and a spread of machine
shapes — the same recipe as ``tests/service/test_differential.py`` —
and materializes the surface of every distinct model signature into a
:class:`~repro.surfaces.arena.LocalArena`-backed store.  Every on-grid
query must then come back from the surface fast path **bit-identical**
(``==``, no tolerance) to a direct
:func:`repro.analysis.batch.scheme_bus_profile` call with a freshly
built model: the surfaces were filled by that very function, so
serving them can only move bytes, never floats.

Off-grid rates are served by linear interpolation along the dyadic rate
axis and pinned within the **stated tolerance of 2e-3** — the measured
worst case for ``N <= 16`` machines on the default 1/128 grid is
~1.03e-3 (curvature-limited: the error of linear interpolation is
bounded by ``h^2/8 * max|d2BW/dr2|``), and interpolated values must
also stay inside their bracketing gridpoint values since every
bandwidth curve is monotone in ``r``.

The suite counts its comparisons and requires at least 200.
"""

from __future__ import annotations

import asyncio
import random

import numpy as np
import pytest

from repro.analysis.batch import scheme_bus_profile
from repro.service import QueryEngine
from repro.service.protocol import Query, build_model, parse_query
from repro.surfaces import LocalArena, SurfaceStore, signature_of

SEED = 20260807

#: Documented interpolation envelope for N <= 16 on the default grid.
INTERP_TOL = 2e-3

ON_GRID_RATES = (0.25, 0.5, 0.75, 1.0)  # dyadic: bitwise gridpoints
OFF_GRID_RATES = (0.137, 0.333, 0.47, 0.619, 0.888, 0.991)


def _random_payloads(count: int, rates) -> list[dict]:
    """A reproducible mixed-scheme single-cell query universe."""
    rng = random.Random(SEED)
    payloads = []
    while len(payloads) < count:
        scheme = rng.choice(["full", "single", "partial", "kclass",
                             "crossbar"])
        n = rng.choice([4, 8, 16])
        payload = {"scheme": scheme, "N": n, "M": n,
                   "r": rng.choice(rates)}
        if n >= 8 and rng.random() < 0.4:
            payload["model"] = "hier"
            payload["hierarchy"] = {"clusters": rng.choice([2, 4])}
        if scheme == "partial":
            groups = rng.choice([2, 4])
            payload["n_groups"] = groups
            payload["B"] = groups * rng.randint(1, max(1, n // groups))
        else:
            payload["B"] = rng.randint(1, n)
            if scheme == "kclass":
                split = rng.randint(1, n - 1)
                payload["class_sizes"] = [split, n - split]
        payloads.append(payload)
    return payloads


def _truth(query: Query) -> dict[int, float]:
    """Ground truth from a direct grid call with a fresh model."""
    profile = scheme_bus_profile(
        query.scheme,
        query.n_processors,
        query.n_memories,
        list(query.bus_counts),
        build_model(query),
        **dict(query.network_kwargs),
    )
    return profile.values


def _universe(rates):
    queries, expected = [], {}
    for payload in _random_payloads(90, rates):
        query = parse_query(payload)
        if query in expected:
            continue
        expected[query] = _truth(query)
        queries.append(query)
    return queries, expected


@pytest.fixture(scope="module")
def store():
    """One store with every signature of both universes materialized."""
    store = SurfaceStore(arena=LocalArena())
    signatures = set()
    for rates in (ON_GRID_RATES, OFF_GRID_RATES):
        for query in _universe(rates)[0]:
            signatures.add(signature_of(query))
    for signature in sorted(signatures, key=lambda s: s.short()):
        store.materialize(signature)
    return store


@pytest.fixture(scope="module")
def on_grid():
    return _universe(ON_GRID_RATES)


@pytest.fixture(scope="module")
def off_grid():
    return _universe(OFF_GRID_RATES)


def test_on_grid_store_lookups_are_bit_identical(store, on_grid):
    queries, expected = on_grid
    comparisons = 0
    schemes = set()
    for query in queries:
        b = query.bus_counts[0]
        value, kind = store.lookup(query)
        if b not in expected[query]:
            assert value is None  # infeasible cells never served
            continue
        assert kind == "exact"
        assert value == expected[query][b]  # bitwise
        comparisons += 1
        schemes.add(query.scheme)
    assert comparisons >= 60
    assert schemes == {"full", "single", "partial", "kclass", "crossbar"}


def test_on_grid_engine_fast_path_is_bit_identical(store, on_grid):
    queries, expected = on_grid
    engine = QueryEngine(surfaces=store)
    comparisons = 0

    async def main():
        nonlocal comparisons
        for query in queries:
            b = query.bus_counts[0]
            if b not in expected[query]:
                continue
            response = await engine.execute(query)
            assert response.source == "surface"
            assert response.values[b] == expected[query][b]  # bitwise
            comparisons += 1

    asyncio.run(main())
    engine.close()
    assert comparisons >= 60


def test_off_grid_interpolation_within_stated_tolerance(store, off_grid):
    queries, expected = off_grid
    comparisons = 0
    for query in queries:
        b = query.bus_counts[0]
        value, kind = store.lookup(query)
        if b not in expected[query]:
            assert value is None
            continue
        assert kind == "interpolated"
        truth = expected[query][b]
        assert value == pytest.approx(truth, abs=INTERP_TOL)
        comparisons += 1
    assert comparisons >= 60


def test_off_grid_engine_path_within_stated_tolerance(store, off_grid):
    queries, expected = off_grid
    engine = QueryEngine(surfaces=store)
    comparisons = 0

    async def main():
        nonlocal comparisons
        for query in queries:
            b = query.bus_counts[0]
            if b not in expected[query]:
                continue
            response = await engine.execute(query)
            assert response.source == "surface_interp"
            assert response.values[b] == pytest.approx(
                expected[query][b], abs=INTERP_TOL
            )
            comparisons += 1

    asyncio.run(main())
    engine.close()
    assert comparisons >= 60


def test_interpolation_stays_inside_its_bracket(store, off_grid):
    """Monotone curves: the blend can never leave [v_lo, v_hi]."""
    queries, expected = off_grid
    checked = 0
    for query in queries:
        b = query.bus_counts[0]
        if b not in expected[query]:
            continue
        surface = store.surface_for(signature_of(query))
        hi = int(np.searchsorted(surface.rates, query.rate))
        lo_v = surface.exact(b, float(surface.rates[hi - 1]))
        hi_v = surface.exact(b, float(surface.rates[hi]))
        if lo_v is None or hi_v is None:
            continue
        value, _ = store.lookup(query)
        assert min(lo_v, hi_v) <= value <= max(lo_v, hi_v)
        checked += 1
    assert checked >= 50


def test_total_differential_coverage_exceeds_two_hundred(
    store, on_grid, off_grid
):
    feasible_on = sum(
        1 for q in on_grid[0] if q.bus_counts[0] in on_grid[1][q]
    )
    feasible_off = sum(
        1 for q in off_grid[0] if q.bus_counts[0] in off_grid[1][q]
    )
    # store + engine passes over each universe, plus the bracket check
    assert 2 * feasible_on + 3 * feasible_off >= 200
