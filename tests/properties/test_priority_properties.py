"""Property-based invariants of the priority/tenure analytic layer.

Hypothesis sweeps machine sizes, bus counts, request rates, class mixes
and burst lengths across all five connection schemes and asserts the
structural laws any criticality-aware split of the paper's bandwidth
must obey:

* per-class bandwidths are non-negative and sum exactly to the total;
* the total respects the physical ceilings ``min(B, M, N * r)`` even
  under burst tenure (holding a bus longer cannot mint bandwidth);
* the strict-priority top class weakly dominates its fair (FCFS /
  proportional) share — priority can only help the critical class;
* bandwidth weakly decreases in the mean tenure ``L`` (longer bursts
  occupy buses, never free them).

The suite runs under the derandomized "ci" profile registered in
``tests/conftest.py``, so failures replay identically in CI.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.batch import priority_class_profile
from repro.core.request_models import UniformRequestModel

TOL = 1e-9

BUS_SCHEMES = ("full", "single", "partial", "kclass")
SCHEMES = BUS_SCHEMES + ("crossbar",)

# Power-of-two machines keep every scheme structurally valid (see
# tests/properties/test_bandwidth_properties.py).
n_exponents = st.integers(min_value=3, max_value=5)  # N = M in {8, 16, 32}
rates = st.floats(min_value=0.05, max_value=1.0)
tenures = st.floats(min_value=1.0, max_value=8.0)
disciplines = st.sampled_from(("rr", "strict", "wrr", "proc"))


@st.composite
def class_mixes(draw):
    """2-4 positive class weights normalized to sum exactly to one."""
    raw = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=2,
            max_size=4,
        )
    )
    total = sum(raw)
    weights = [w / total for w in raw]
    weights[-1] = 1.0 - sum(weights[:-1])
    return tuple(weights)


def _bus_exponent(scheme: str, n_exp: int) -> st.SearchStrategy[int]:
    low = 1 if scheme == "partial" else 0
    return st.integers(min_value=low, max_value=n_exp)


def _profile(scheme, n, n_buses, rate, **kwargs):
    model = UniformRequestModel(n, n, rate=rate)
    return priority_class_profile(scheme, n, n, n_buses, model, **kwargs)


@pytest.mark.parametrize("scheme", SCHEMES)
@given(
    n_exp=n_exponents,
    data=st.data(),
    rate=rates,
    weights=class_mixes(),
    discipline=disciplines,
    tenure=tenures,
)
def test_per_class_bandwidths_sum_to_total(
    scheme, n_exp, data, rate, weights, discipline, tenure
):
    n = 2**n_exp
    b = n if scheme == "crossbar" else 2 ** data.draw(
        _bus_exponent(scheme, n_exp), label="B exponent"
    )
    profile = _profile(
        scheme, n, b, rate,
        discipline=discipline, class_weights=weights, tenure=tenure,
    )
    assert all(v >= 0.0 for v in profile.per_class)
    assert sum(profile.per_class) == pytest.approx(profile.total, abs=TOL)


@pytest.mark.parametrize("scheme", SCHEMES)
@given(
    n_exp=n_exponents,
    data=st.data(),
    rate=rates,
    tenure=tenures,
)
def test_total_respects_physical_ceilings(scheme, n_exp, data, rate, tenure):
    n = 2**n_exp
    b = n if scheme == "crossbar" else 2 ** data.draw(
        _bus_exponent(scheme, n_exp), label="B exponent"
    )
    profile = _profile(scheme, n, b, rate, tenure=tenure)
    assert profile.total <= min(b, n, n * rate) + TOL


@pytest.mark.parametrize("scheme", SCHEMES)
@given(
    n_exp=n_exponents,
    data=st.data(),
    rate=rates,
    weights=class_mixes(),
)
def test_strict_top_class_dominates_fair_share(
    scheme, n_exp, data, rate, weights
):
    n = 2**n_exp
    b = n if scheme == "crossbar" else 2 ** data.draw(
        _bus_exponent(scheme, n_exp), label="B exponent"
    )
    strict = _profile(
        scheme, n, b, rate, discipline="strict", class_weights=weights
    )
    fair = _profile(
        scheme, n, b, rate, discipline="rr", class_weights=weights
    )
    assert strict.total == pytest.approx(fair.total, abs=TOL)
    assert strict.per_class[0] >= fair.per_class[0] - TOL


@pytest.mark.parametrize("scheme", SCHEMES)
@given(
    n_exp=n_exponents,
    data=st.data(),
    rate=rates,
    tenure_pair=st.tuples(tenures, tenures),
)
def test_bandwidth_weakly_decreases_in_tenure(
    scheme, n_exp, data, rate, tenure_pair
):
    n = 2**n_exp
    b = n if scheme == "crossbar" else 2 ** data.draw(
        _bus_exponent(scheme, n_exp), label="B exponent"
    )
    l_low, l_high = sorted(tenure_pair)
    short = _profile(scheme, n, b, rate, tenure=l_low)
    long = _profile(scheme, n, b, rate, tenure=l_high)
    assert long.total <= short.total + TOL
    assert long.effective_buses <= short.effective_buses + TOL
