"""Monte-Carlo bandwidth for arbitrary incidence structures.

The loop engine already evaluates :class:`StructureNetwork` via the
matching arbiter, but it pays a Python-level price per cycle.  This
backend exploits the fact that bandwidth only depends on the *requested
set* per cycle (stage-1 processor arbitration picks winners but never
changes which modules are requested): request generation is vectorized
over all cycles at once, and the served count per cycle is a memoized
maximum-matching lookup keyed by the requested-set bitmask.

Semantics match :func:`repro.core.exact.exact_bandwidth` for
:class:`StructureNetwork` exactly (same served-count rule, sampled
instead of enumerated), which is what the structure-blind differential
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.request_models import RequestModel
from repro.exceptions import ConfigurationError, SimulationError
from repro.topology.structure import ConnectionStructure, MatchingOracle

__all__ = ["StructureSimResult", "simulate_structure_bandwidth", "structure_seed"]


@dataclass(frozen=True)
class StructureSimResult:
    """Outcome of a structure simulation run."""

    bandwidth: float
    stderr: float
    n_cycles: int

    @property
    def ci95_halfwidth(self) -> float:
        return 1.96 * self.stderr


def structure_seed(structure: ConnectionStructure, n_buses: int, n_cycles: int) -> np.random.SeedSequence:
    """Deterministic seed derived from the structure digest.

    Ties the fallback simulation stream to the structure content so
    repeated evaluations (across processes, cache rebuilds, fabric
    workers) reproduce bit-identical estimates.
    """
    return np.random.SeedSequence(
        [int.from_bytes(structure.digest()[:8], "big"), int(n_buses), int(n_cycles)]
    )


def simulate_structure_bandwidth(
    structure: ConnectionStructure,
    model: RequestModel,
    n_cycles: int = 20_000,
    seed=None,
) -> StructureSimResult:
    """Estimate bandwidth of a structure under a request model.

    ``seed`` may be anything ``numpy.random.default_rng`` accepts; when
    omitted it is derived from the structure digest via
    :func:`structure_seed`.
    """
    if n_cycles < 1:
        raise SimulationError(f"n_cycles must be >= 1, got {n_cycles}")
    if model.n_processors != structure.n_processors:
        raise ConfigurationError(
            f"model has {model.n_processors} processors, structure "
            f"{structure.n_processors}"
        )
    if model.n_memories != structure.n_memories:
        raise ConfigurationError(
            f"model addresses {model.n_memories} modules, structure has "
            f"{structure.n_memories}"
        )
    model.validate()
    if seed is None:
        seed = structure_seed(structure, structure.n_buses, n_cycles)
    rng = np.random.default_rng(seed)

    q = model.request_matrix()  # N x M per-cycle request probabilities
    row_totals = q.sum(axis=1)
    cumulative = np.cumsum(q, axis=1)
    n = structure.n_processors
    m = structure.n_memories

    # One uniform draw per (cycle, processor): below the row total the
    # processor requests, and the same draw selects the module by inverse
    # transform over the row's cumulative probabilities.
    draws = rng.random((int(n_cycles), n))
    requested = np.zeros((int(n_cycles), m), dtype=bool)
    for p in range(n):
        issued = draws[:, p] < row_totals[p]
        modules = np.searchsorted(cumulative[p], draws[issued, p], side="right")
        np.minimum(modules, m - 1, out=modules)
        requested[np.flatnonzero(issued), modules] = True

    oracle = MatchingOracle(structure.memory_bus)
    weights = 1 << np.arange(m, dtype=object)
    masks = requested @ weights  # Python ints, safe for any M
    served = np.fromiter(
        (oracle.served(int(mask)) for mask in masks),
        dtype=float,
        count=int(n_cycles),
    )
    bandwidth = float(served.mean())
    if n_cycles > 1:
        stderr = float(served.std(ddof=1) / np.sqrt(n_cycles))
    else:
        stderr = 0.0
    return StructureSimResult(bandwidth=bandwidth, stderr=stderr, n_cycles=int(n_cycles))
