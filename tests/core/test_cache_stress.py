"""Concurrency stress: PmfCache under 8 reader/writer threads.

The pmf cache is shared by every closed-form consumer, including the
parallel sweep executor's worker threads and (transitively) the query
service, so its accounting must stay exact under contention: no lost
hit/miss counts, ``currsize`` never above ``maxsize``, evictions never
over-counted, and every returned vector bit-identical to the uncached
reference no matter which thread computed it.
"""

from __future__ import annotations

import random
import threading

import numpy as np

from repro.core.binomial import binomial_pmf
from repro.core.cache import PmfCache

THREADS = 8
LOOKUPS_PER_THREAD = 400

#: More distinct keys than cache capacity, so eviction churns constantly.
KEYS = [(n, p) for n in (4, 8, 12, 16) for p in
        (0.05, 0.1, 0.2, 0.3, 0.5, 0.7)]


def _hammer(cache: PmfCache, reference: dict) -> list:
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        try:
            barrier.wait()
            for _ in range(LOOKUPS_PER_THREAD):
                n, p = rng.choice(KEYS)
                value = cache.binomial(n, p)
                assert not value.flags.writeable
                assert np.array_equal(value, reference[(n, p)])
        except Exception as exc:  # pragma: no cover - fail loudly
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(1_000 + i,))
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def test_contended_cache_accounting_is_exact():
    cache = PmfCache(maxsize=8)  # far fewer slots than the 24 keys
    reference = {(n, p): binomial_pmf(n, p) for n, p in KEYS}

    errors = _hammer(cache, reference)
    assert not errors

    info = cache.cache_info()
    # every lookup was either a hit or a miss: none lost, none doubled
    assert info.hits + info.misses == THREADS * LOOKUPS_PER_THREAD
    assert info.currsize <= info.maxsize == 8
    # each miss inserts at most one entry; an eviction only ever removes
    # one inserted entry, so evictions can never exceed insertions
    # beyond what is still resident (the duplicate-eviction guard)
    assert cache.evictions + info.currsize <= info.misses
    assert info.hits > 0 and info.misses > 0 and cache.evictions > 0


def test_counters_are_stable_after_quiesce():
    cache = PmfCache(maxsize=8)
    reference = {(n, p): binomial_pmf(n, p) for n, p in KEYS}
    assert not _hammer(cache, reference)
    first = (cache.cache_info(), cache.evictions)
    second = (cache.cache_info(), cache.evictions)
    assert first == second


def test_contended_entries_stay_bit_identical_to_reference():
    cache = PmfCache(maxsize=len(KEYS))  # no eviction: pure sharing
    reference = {(n, p): binomial_pmf(n, p) for n, p in KEYS}
    assert not _hammer(cache, reference)
    info = cache.cache_info()
    assert info.currsize == len(KEYS)
    # a fully warm cache serves every key from the same frozen vector
    for n, p in KEYS:
        again = cache.binomial(n, p)
        assert again is cache.binomial(n, p)
        assert np.array_equal(again, reference[(n, p)])
