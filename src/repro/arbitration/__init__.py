"""Two-stage arbitration substrate (Section II-A).

Stage one: per-module random N-user/1-server arbiters.  Stage two: a
scheme-specific bus assignment policy.  :func:`assignment_for` builds the
stage-two policy matching a topology, which is how the simulator stays
faithful to the paper's arbitration for every connection scheme.
"""

from __future__ import annotations

from repro.arbitration.base import BusAssignmentPolicy
from repro.arbitration.bus_arbiter import (
    CrossbarAssignment,
    GroupedBusAssignment,
    MatchingBusAssignment,
    RandomBusAssignment,
    RoundRobinBusAssignment,
    SingleBusAssignment,
)
from repro.arbitration.kclass_assignment import KClassBusAssignment
from repro.arbitration.memory_arbiter import (
    MemoryArbiter,
    resolve_memory_contention,
)
from repro.topology import (
    CrossbarNetwork,
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    MultipleBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
)

__all__ = [
    "BusAssignmentPolicy",
    "RoundRobinBusAssignment",
    "RandomBusAssignment",
    "GroupedBusAssignment",
    "SingleBusAssignment",
    "CrossbarAssignment",
    "MatchingBusAssignment",
    "KClassBusAssignment",
    "MemoryArbiter",
    "resolve_memory_contention",
    "assignment_for",
]


def assignment_for(network: MultipleBusNetwork) -> BusAssignmentPolicy:
    """Return the paper's stage-two policy for a given topology.

    * crossbar -> no bus contention,
    * full -> round-robin ``B``-out-of-``M``,
    * partial -> per-group round-robin,
    * single -> per-bus round-robin,
    * K classes -> the two-step procedure of Lang et al. [10],
    * anything else (e.g. fault-degraded topologies) -> maximum matching.
    """
    if isinstance(network, CrossbarNetwork):
        return CrossbarAssignment(network.n_memories, network.n_buses)
    if isinstance(network, KClassPartialBusNetwork):
        return KClassBusAssignment(network.class_of_module, network.n_buses)
    if isinstance(network, PartialBusNetwork):
        return GroupedBusAssignment(
            network.n_memories, network.n_buses, network.n_groups
        )
    if isinstance(network, SingleBusMemoryNetwork):
        return SingleBusAssignment(network.bus_of_module, network.n_buses)
    if isinstance(network, FullBusMemoryNetwork):
        return RoundRobinBusAssignment(network.n_memories, network.n_buses)
    return MatchingBusAssignment(network.memory_bus_matrix())
