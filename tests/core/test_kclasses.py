"""Tests for the K-class closed forms (eqs. 10-12) against enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import bandwidth_full
from repro.core.kclasses import (
    bandwidth_kclass,
    bus_busy_probabilities,
    class_request_pmfs,
)
from repro.exceptions import ConfigurationError
from tests.conftest import brute_force_kclass_bandwidth

UNIFORM8_X = 1.0 - (1.0 - 1.0 / 8) ** 8


class TestClassRequestPmfs:
    def test_shapes(self):
        pmfs = class_request_pmfs([2, 3], 0.5)
        assert len(pmfs[0]) == 3
        assert len(pmfs[1]) == 4

    def test_scalar_x_broadcasts(self):
        pmfs = class_request_pmfs([2, 2], 0.4)
        assert pmfs[0] == pytest.approx(pmfs[1])

    def test_per_class_x(self):
        pmfs = class_request_pmfs([1, 1], [0.2, 0.9])
        assert pmfs[0][1] == pytest.approx(0.2)
        assert pmfs[1][1] == pytest.approx(0.9)

    def test_rejects_mismatched_x_count(self):
        with pytest.raises(ConfigurationError, match="one X per class"):
            class_request_pmfs([2, 2], [0.5])


class TestBusBusyProbabilities:
    def test_paper_example_structure(self):
        # B=4, K=3 as in Fig. 3: bus 4 serves only C_3, bus 1 serves all.
        ys = bus_busy_probabilities([2, 2, 2], 4, 0.5)
        assert len(ys) == 4
        # Y_B = 1 - Q_K(0).
        assert ys[3] == pytest.approx(1.0 - 0.25)

    def test_top_bus_formula(self):
        x = 0.3
        ys = bus_busy_probabilities([1, 2, 3], 3, x)
        assert ys[2] == pytest.approx(1.0 - (1 - x) ** 3)

    def test_busier_low_buses(self):
        # Lower buses serve more classes, so Y_i is non-increasing in i
        # ... except ties; check Y_1 >= Y_B.
        ys = bus_busy_probabilities([2, 2, 2, 2], 4, 0.6)
        assert ys[0] >= ys[-1] - 1e-12

    def test_all_probabilities(self):
        ys = bus_busy_probabilities([3, 3], 4, 0.7)
        assert np.all(ys >= 0.0) and np.all(ys <= 1.0)

    def test_empty_class_is_transparent(self):
        # A zero-size class never blocks or occupies anything.
        with_empty = bandwidth_kclass([0, 4], 2, 0.5)
        # Equivalent: all 4 modules in one class attached to both buses
        # ... which is the full-connection network with B=2.
        assert with_empty == pytest.approx(bandwidth_full(4, 2, 0.5))

    def test_rejects_k_above_b(self):
        with pytest.raises(ConfigurationError, match="K <= B"):
            bus_busy_probabilities([1, 1, 1], 2, 0.5)

    def test_rejects_no_classes(self):
        with pytest.raises(ConfigurationError):
            bus_busy_probabilities([], 2, 0.5)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            bus_busy_probabilities([2, -1], 2, 0.5)

    def test_rejects_all_empty(self):
        with pytest.raises(ConfigurationError):
            bus_busy_probabilities([0, 0], 2, 0.5)


class TestBandwidthKClass:
    def test_matches_brute_force(self):
        cases = [
            ([2, 2], 2, 0.5),
            ([1, 2, 3], 3, 0.4),
            ([2, 2, 2], 4, 0.65),
            ([3, 1], 3, 0.8),
            ([1, 1, 1, 1], 4, 0.3),
        ]
        for sizes, b, x in cases:
            assert bandwidth_kclass(sizes, b, x) == pytest.approx(
                brute_force_kclass_bandwidth(sizes, b, x), abs=1e-12
            )

    def test_paper_table6_cell(self):
        # N=8, B=4, K=4 equal classes, uniform r=1.0 -> 3.68 (Table VI).
        assert bandwidth_kclass([2, 2, 2, 2], 4, UNIFORM8_X) == pytest.approx(
            3.68, abs=0.005
        )

    def test_k1_reduces_to_full_connection(self):
        # A single class attached to every bus is eq. (4).
        for m, b, x in ((6, 3, 0.5), (8, 4, 0.7), (5, 5, 0.2)):
            assert bandwidth_kclass([m], b, x) == pytest.approx(
                bandwidth_full(m, b, x), abs=1e-12
            )

    def test_below_full_connection(self):
        # Restricting connectivity can only lose bandwidth.
        x = 0.6
        assert bandwidth_kclass([2, 2, 2, 2], 4, x) <= (
            bandwidth_full(8, 4, x) + 1e-12
        )

    def test_zero_x(self):
        assert bandwidth_kclass([2, 2], 2, 0.0) == 0.0

    def test_x_one_saturates(self):
        # Every module requested: every bus busy.
        assert bandwidth_kclass([2, 2, 2], 3, 1.0) == pytest.approx(3.0)

    def test_per_class_x_prefers_hot_high(self):
        # Hot modules in the best-connected class win (paper principle 2).
        hot, cold = 0.9, 0.2
        high = bandwidth_kclass([2, 2], 2, [cold, hot])
        low = bandwidth_kclass([2, 2], 2, [hot, cold])
        assert high > low

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
        extra_buses=st.integers(min_value=0, max_value=3),
        x=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_enumeration(self, sizes, extra_buses, x):
        b = len(sizes) + extra_buses
        analytic = bandwidth_kclass(sizes, b, x)
        brute = brute_force_kclass_bandwidth(sizes, b, x)
        assert analytic == pytest.approx(brute, abs=1e-9)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=5),
        x=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_property_bounds(self, sizes, x):
        b = len(sizes)
        value = bandwidth_kclass(sizes, b, x)
        assert -1e-9 <= value <= min(b, sum(sizes) * x) + 1e-9
