"""Cross-scheme comparison: rankings, figures of merit, paper machines.

Complements the smoke tests in ``test_sweep_compare.py`` with full
coverage of :mod:`repro.analysis.compare`: every ``SchemeComparison``
field is cross-checked against the cost model and the closed forms, and
the Section IV ranking claims are pinned on the paper's machines under
both request models.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.compare import SchemeComparison, compare_schemes
from repro.analysis.evaluate import analytic_bandwidth
from repro.core.hierarchy import paper_two_level_model
from repro.core.request_models import UniformRequestModel
from repro.topology.cost import cost_report, performance_cost_ratio
from repro.topology.factory import build_network


def _by_scheme(rows):
    return {row.scheme: row for row in rows}


class TestFieldsAgainstGroundTruth:
    @pytest.mark.parametrize("scheme", ["full", "partial", "kclass", "single"])
    def test_fields_match_cost_model_and_closed_form(self, scheme):
        n, b = 16, 8
        model = UniformRequestModel(n, n, rate=1.0)
        row = _by_scheme(compare_schemes(n, b, model))[scheme]
        network = build_network(scheme, n, n, b)
        report = cost_report(network)
        assert row.bandwidth == pytest.approx(
            analytic_bandwidth(network, model), abs=1e-12
        )
        assert row.connections == report.connections
        assert row.max_bus_load == report.max_bus_load
        assert row.fault_tolerance == report.degree_of_fault_tolerance
        assert row.bandwidth_per_connection == pytest.approx(
            performance_cost_ratio(row.bandwidth, report), abs=1e-12
        )

    def test_fault_tolerance_degrees_match_table_i(self):
        # Table I: full tolerates B-1 failures, partial B/g - 1, single 0.
        rows = _by_scheme(
            compare_schemes(16, 8, UniformRequestModel(16, 16))
        )
        assert rows["full"].fault_tolerance == 7
        assert rows["partial"].fault_tolerance == 3  # g = 2 -> B/g - 1
        assert rows["single"].fault_tolerance == 0

    def test_comparison_is_frozen(self):
        row = compare_schemes(8, 4, UniformRequestModel(8, 8))[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            row.bandwidth = 0.0


class TestRanking:
    @pytest.mark.parametrize("rate", [1.0, 0.5])
    @pytest.mark.parametrize("n,b", [(8, 4), (16, 8), (32, 16)])
    def test_section_iv_ordering_under_both_models(self, n, b, rate):
        """crossbar >= full >= {partial, kclass} >= single on paper machines."""
        for model in (
            UniformRequestModel(n, n, rate=rate),
            paper_two_level_model(n, rate=rate),
        ):
            rows = _by_scheme(compare_schemes(n, b, model))
            assert rows["crossbar"].bandwidth >= rows["full"].bandwidth - 1e-9
            assert rows["full"].bandwidth >= rows["partial"].bandwidth - 1e-9
            assert rows["full"].bandwidth >= rows["kclass"].bandwidth - 1e-9
            assert rows["partial"].bandwidth >= rows["single"].bandwidth - 1e-9
            assert rows["kclass"].bandwidth >= rows["single"].bandwidth - 1e-9

    def test_single_wins_on_bandwidth_per_connection(self):
        """The paper's cost conclusion: single is the best MBW/connection."""
        rows = compare_schemes(16, 8, UniformRequestModel(16, 16))
        multibus = [row for row in rows if row.scheme != "crossbar"]
        best = max(multibus, key=lambda row: row.bandwidth_per_connection)
        assert best.scheme == "single"

    def test_result_is_sorted_by_decreasing_bandwidth(self):
        rows = compare_schemes(16, 8, paper_two_level_model(16, rate=1.0))
        bandwidths = [row.bandwidth for row in rows]
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_custom_scheme_subset_and_order_preserving_sort(self):
        rows = compare_schemes(
            16, 8, UniformRequestModel(16, 16), schemes=("single", "full")
        )
        assert [row.scheme for row in rows] == ["full", "single"]


class TestStructuralSkips:
    def test_odd_bus_count_drops_partial_only(self):
        rows = _by_scheme(compare_schemes(16, 3, UniformRequestModel(16, 16)))
        assert "partial" not in rows  # g = 2 does not divide B = 3
        assert {"full", "kclass", "single", "crossbar"} <= set(rows)

    def test_all_schemes_skipped_yields_empty_list(self):
        # B > M is invalid for every bus-limited scheme; crossbar excluded.
        rows = compare_schemes(
            4, 9, UniformRequestModel(4, 4), schemes=("full", "single")
        )
        assert rows == []


class TestAsRow:
    def test_as_row_shape_and_rounding(self):
        comparison = SchemeComparison(
            scheme="full",
            bandwidth=3.87654,
            connections=64,
            max_bus_load=32,
            fault_tolerance=3,
            bandwidth_per_connection=0.0605710,
        )
        assert comparison.as_row() == {
            "scheme": "full",
            "MBW": 3.877,
            "connections": 64,
            "max load": 32,
            "fault tol.": 3,
            "MBW/conn": 0.06057,
        }
