"""E6 benchmark: regenerate Table VI (K = B class networks)."""

from repro.experiments import table6


def test_table6_kclass(benchmark, reproduces):
    result = benchmark(table6.run)
    reproduces(result)
    assert result.n_compared >= 45
