"""Interfaces for the second arbitration stage (bus assignment).

The paper resolves conflicts in two stages (Section II-A): stage one, a
per-module ``N``-user/1-server arbiter picks one processor among those
requesting the module (:mod:`repro.arbitration.memory_arbiter`); stage
two, a bus arbiter decides which of the winning modules obtain one of the
``B`` buses.  This module defines the stage-two interface; concrete
policies live in :mod:`repro.arbitration.bus_arbiter` and
:mod:`repro.arbitration.kclass_assignment`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

__all__ = ["BusAssignmentPolicy"]


class BusAssignmentPolicy(abc.ABC):
    """Assigns buses to the memory modules selected by stage one.

    Policies may be stateful (round-robin pointers); :meth:`reset` returns
    them to their initial state so simulation runs are reproducible.
    """

    def __init__(self, n_memories: int, n_buses: int):
        self._n_memories = int(n_memories)
        self._n_buses = int(n_buses)

    @property
    def n_memories(self) -> int:
        """Number of memory modules the policy arbitrates over."""
        return self._n_memories

    @property
    def n_buses(self) -> int:
        """Number of buses the policy hands out."""
        return self._n_buses

    @abc.abstractmethod
    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        """Return this cycle's grants as a ``{bus: module}`` mapping.

        ``requested_modules`` lists the distinct modules with at least one
        outstanding request (stage-one winners).  Each granted bus carries
        exactly one module and each module occupies at most one bus.
        """

    def reset(self) -> None:
        """Restore initial arbitration state (no-op for stateless policies)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_memories={self._n_memories}, "
            f"n_buses={self._n_buses})"
        )
