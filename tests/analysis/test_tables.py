"""Table rendering and table assembly against golden paper fixtures.

``render_table`` / ``render_matrix`` are pinned with exact golden
strings (the paper's visual conventions: two-decimal floats, aligned
columns, blank cells for impossible configurations), and the assembled
experiment tables are checked cell-by-cell against the transcribed
Table II/V data in :mod:`repro.experiments.paper_data`.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_matrix, render_table
from repro.experiments import paper_data
from repro.experiments.tables_common import scheme_table


class TestRenderTableGolden:
    def test_golden_two_column_table(self):
        text = render_table(
            [
                {"B": 1, "MBW": 1.0},
                {"B": 2, "MBW": 1.96875},
            ],
            title="demo",
        )
        assert text == (
            "demo\n"
            "B | MBW \n"
            "--+-----\n"
            "1 | 1.00\n"
            "2 | 1.97"
        )

    def test_floats_render_to_two_decimals(self):
        assert "3.88" in render_table([{"x": 3.87654}])
        assert "3.87654" not in render_table([{"x": 3.87654}])

    def test_integers_and_strings_render_verbatim(self):
        text = render_table([{"n": 12, "scheme": "kclass"}])
        assert "12" in text
        assert "kclass" in text

    def test_missing_keys_render_blank_not_none(self):
        text = render_table([{"a": 1.0}, {"b": 2.0}], columns=["a", "b"])
        assert "None" not in text
        last_row = text.splitlines()[-1]
        assert last_row.split("|")[0].strip() == ""

    def test_explicit_column_selection_and_order(self):
        text = render_table(
            [{"a": 1, "b": 2, "c": 3}], columns=["c", "a"]
        )
        header = text.splitlines()[0]
        assert header.split("|")[0].strip() == "c"
        assert "b" not in header

    def test_empty_rows_render_header_only(self):
        text = render_table([], columns=["a", "b"])
        assert text.splitlines()[0].startswith("a")
        assert len(text.splitlines()) == 2  # header + rule, no data rows


class TestRenderMatrixGolden:
    def test_golden_matrix_with_blank_cell(self):
        text = render_matrix(
            [1, 2],
            ["N=8", "N=16"],
            {(1, "N=8"): 1.0, (1, "N=16"): 1.0, (2, "N=8"): 1.97},
            corner="B",
        )
        assert text == (
            "B | N=8  | N=16\n"
            "--+------+-----\n"
            "1 | 1.00 | 1.00\n"
            "2 | 1.97 |     "
        )

    def test_title_is_first_line(self):
        text = render_matrix([1], ["c"], {(1, "c"): 2}, title="Table X")
        assert text.splitlines()[0] == "Table X"


class TestTableAssemblyAgainstPaper:
    """The assembled Table V matches the transcription wherever printed."""

    @pytest.fixture(scope="class")
    def table5(self):
        return scheme_table(
            "table5",
            "Table V",
            "partial",
            paper_data.TABLE_V,
            n_groups=2,
            bus_counts=(2, 4, 8, 16, 32),
        )

    def test_every_printed_cell_is_compared(self, table5):
        printed = sum(
            1
            for pair in paper_data.TABLE_V.values()
            for value in pair
            if value is not None
        )
        assert table5.n_compared == printed

    def test_all_cells_within_paper_tolerance(self, table5):
        assert table5.all_within_tolerance()
        assert table5.max_abs_error <= paper_data.TOLERANCE

    def test_records_match_paper_to_table_precision(self, table5):
        by_key = {
            (rec["r"], rec["N"], rec["B"], rec["model"]): rec["bandwidth"]
            for rec in table5.records
        }
        for (rate, n, b), (hier, unif) in paper_data.TABLE_V.items():
            for name, paper_value in (("hier", hier), ("unif", unif)):
                if paper_value is None:
                    continue
                computed = by_key[(rate, n, b, name)]
                assert computed == pytest.approx(
                    paper_value, abs=paper_data.TOLERANCE
                ), f"Table V cell r={rate} N={n} B={b} {name}"

    def test_rendered_table_shows_two_decimal_cells(self, table5):
        # Spot-check two transcribed corners in the rendered panels.
        hier_8_2 = paper_data.TABLE_V[(1.0, 8, 2)][0]
        assert f"{hier_8_2:.2f}" in table5.rendered
        assert "N=32" in table5.rendered
        assert "(r = 0.5)" in table5.rendered

    def test_blank_cells_for_b_exceeding_n(self, table5):
        keys = {
            (rec["N"], rec["B"]) for rec in table5.records
        }
        assert (8, 16) not in keys  # B = 16 > N = 8 never assembled
        assert (8, 8) in keys
