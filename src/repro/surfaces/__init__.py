"""Materialized bandwidth surfaces served from a shared-memory arena.

The paper's closed forms make every single-cell answer a point on a
dense ``(bus count, request rate)`` surface per model signature.  This
package precomputes those surfaces (:mod:`~repro.surfaces.grid`),
publishes them in a versioned, checksummed shared-memory arena with an
atomic swap protocol (:mod:`~repro.surfaces.codec`,
:mod:`~repro.surfaces.arena`), serves zero-copy lookups with optional
rate interpolation while tracking hot signatures
(:mod:`~repro.surfaces.store`), and refreshes surfaces in the
background without blocking the serving loop
(:mod:`~repro.surfaces.refresh`).
"""

from repro.surfaces.arena import DEFAULT_PREFIX, LocalArena, SurfaceArena
from repro.surfaces.codec import SurfaceCodecError, decode, encode
from repro.surfaces.grid import (
    DEFAULT_RATE_DIVISIONS,
    Surface,
    SurfaceSignature,
    default_rate_grid,
    materialize_surface,
    query_for,
    signature_of,
)
from repro.surfaces.refresh import SurfaceRefresher
from repro.surfaces.store import (
    ENV_PREFIX,
    SurfaceStore,
    sweep_analytic_from_env,
    sweep_cell_signature,
)

__all__ = [
    "DEFAULT_PREFIX",
    "DEFAULT_RATE_DIVISIONS",
    "ENV_PREFIX",
    "LocalArena",
    "Surface",
    "SurfaceArena",
    "SurfaceCodecError",
    "SurfaceRefresher",
    "SurfaceSignature",
    "SurfaceStore",
    "decode",
    "default_rate_grid",
    "encode",
    "materialize_surface",
    "query_for",
    "signature_of",
    "sweep_analytic_from_env",
    "sweep_cell_signature",
]
