"""Boot ``repro-serve`` under a chaos plan and assert its failure contract.

Run by the CI ``resilience-smoke`` job (and runnable locally with
``PYTHONPATH=src python tools/resilience_smoke.py``).  The script starts
a real server with a deterministic :class:`~repro.resilience.chaos.FaultPlan`
installed and walks the resilience envelopes end to end:

1. an injected ``service.http`` error surfaces as a scrubbed 500
   ``ChaosError`` envelope (never a traceback);
2. a request carrying ``X-Repro-Deadline-Ms`` smaller than the batch
   window comes back as a structured 504 *within* its budget;
3. injected ``service.batch`` flush faults feed the batch breaker's
   failure window until it opens, after which a request fails fast with
   a 503 ``BreakerOpenError`` and a ``Retry-After`` hint;
4. ``GET /metrics`` exposes the open breaker gauge;
5. after a graceful SIGINT shutdown, ``manifest.json`` carries the
   ``chaos`` / ``breaker`` / ``brownout`` sections and the per-site
   ``resilience.deadline_exceeded`` count.

Exits nonzero on the first violated assertion.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

BATCH_DELAY = 0.25
PLAN = {
    "seed": 7,
    "rules": [
        # First HTTP request dies inside the front-end.
        {"site": "service.http", "kind": "error", "calls": [1]},
        # Every batch flush fails until the breaker opens.
        {"site": "service.batch", "kind": "error", "every": 1},
    ],
}


def _request(port, payload=None, headers=None, path="/query"):
    if payload is None:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", method="GET"
        )
    else:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode(),
            headers=headers or {},
            method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _query(bus_count):
    return {"scheme": "full", "N": 16, "M": 16, "B": bus_count, "r": 0.5}


def main() -> int:
    telemetry = Path("svc-telem")
    telemetry.mkdir(exist_ok=True)
    plan_path = telemetry / "chaos-plan.json"
    plan_path.write_text(json.dumps(PLAN, indent=2))
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli",
            "--port", "0",
            "--batch-delay", str(BATCH_DELAY),
            "--cache-size", "0",
            "--chaos-plan", str(plan_path),
            "--telemetry", str(telemetry),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        line = server.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])

        # 1. The chaos plan's first-call HTTP error: typed, scrubbed.
        status, _, body = _request(port, _query(8))
        envelope = json.loads(body)
        assert status == 500, (status, envelope)
        assert envelope["error"]["type"] == "ChaosError", envelope
        assert envelope["error"]["message"] == "internal error", envelope

        # 2. A 50ms deadline against a 250ms batch window: 504 within
        #    budget, long before the window would have flushed.
        started = time.perf_counter()
        status, _, body = _request(
            port, _query(8), headers={"X-Repro-Deadline-Ms": "50"}
        )
        elapsed = time.perf_counter() - started
        envelope = json.loads(body)
        assert status == 504, (status, envelope)
        assert envelope["error"]["type"] == "DeadlineExceededError", envelope
        assert envelope["error"]["site"] == "service.engine", envelope
        assert envelope["error"]["budget_ms"] == 50.0, envelope
        assert elapsed < BATCH_DELAY, elapsed
        # Let the abandoned window flush (and fail) before continuing so
        # every breaker failure below maps to exactly one request.
        time.sleep(BATCH_DELAY * 2)

        # 3. Two more failed flushes reach the default threshold (3)
        #    and open the service.batch breaker; the next request fails
        #    fast with a 503 and a Retry-After hint.
        for bus_count in (9, 10):
            status, _, body = _request(port, _query(bus_count))
            envelope = json.loads(body)
            assert status == 500, (status, envelope)
            assert envelope["error"]["type"] == "ChaosError", envelope
        status, headers, body = _request(port, _query(11))
        envelope = json.loads(body)
        assert status == 503, (status, envelope)
        assert envelope["error"]["type"] == "BreakerOpenError", envelope
        assert envelope["error"]["breaker"] == "service.batch", envelope
        assert "Retry-After" in headers, headers

        # 4. The open breaker is visible on the live metrics endpoint.
        status, _, metrics = _request(port, path="/metrics")
        assert status == 200, status
        text = metrics.decode()
        assert 'repro_breaker_open{breaker="service.batch"} 1' in text
        assert "repro_breaker_rejected" in text
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            raise

    # 5. Graceful shutdown wrote the manifest trio; check the
    #    control-plane sections.
    manifest = json.loads((telemetry / "manifest.json").read_text())
    assert manifest["chaos"]["by_site"]["service.http"] == 1, (
        manifest["chaos"]
    )
    assert manifest["chaos"]["by_site"]["service.batch"] == 3, (
        manifest["chaos"]
    )
    assert manifest["chaos"]["by_kind"] == {"error": 4}, manifest["chaos"]
    breaker = manifest["breaker"]
    assert breaker["transition_totals"]["service.batch"] == 1, breaker
    assert any(
        t["breaker"] == "service.batch" and t["to"] == "open"
        for t in breaker["transitions"]
    ), breaker
    assert breaker["rejected"]["service.batch"] >= 1, breaker
    assert manifest["resilience"]["deadline_exceeded"] == {
        "service.engine": 1
    }, manifest["resilience"]
    # The brownout governor ran (on by default) but stayed calm.
    assert manifest["brownout"]["transitions"] == [], manifest["brownout"]
    assert (telemetry / "events.jsonl").stat().st_size > 0
    assert (telemetry / "metrics.prom").stat().st_size > 0
    print("resilience smoke OK:", json.dumps({
        "chaos": manifest["chaos"]["by_site"],
        "breaker": breaker["transition_totals"],
        "deadline_exceeded": manifest["resilience"]["deadline_exceeded"],
    }))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
