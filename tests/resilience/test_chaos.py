"""Chaos tests: killed workers, corrupt cache entries, checkpoint/resume.

The acceptance scenario: a pooled sweep that loses a worker to SIGKILL
mid-run *and* starts against a cache containing one corrupt entry must
finish with records bit-identical to an undisturbed serial run, with the
retries and the quarantine visible in the observability manifest.
Determinism makes this checkable exactly: per-cell seeds are spawned by
cell index before dispatch, so no crash/retry interleaving can change a
record.
"""

import json
import os
import signal
from pathlib import Path

import pytest

from repro import build_manifest, telemetry
from repro.analysis.parallel import (
    ResultCache,
    _simulated_cell,
    _simulated_cell_params,
    parallel_map,
    sweep_cell_specs,
)
from repro.exceptions import RetryExhaustedError
from repro.resilience.retry import RetryPolicy


def _specs(n_cycles=300):
    return sweep_cell_specs(
        "full", 8, bus_counts=(2, 4), rates=(0.5, 1.0), n_cycles=n_cycles,
        seed=11,
    )


def _chaos_cell(spec):
    """Worker that SIGKILLs itself once (whoever claims the marker dies)."""
    marker = Path(spec["kill_marker"])
    try:
        marker.unlink()
    except FileNotFoundError:
        pass
    else:
        os.kill(os.getpid(), signal.SIGKILL)
    return _simulated_cell(spec)


def _always_crashes(spec):
    os.kill(os.getpid(), signal.SIGKILL)


def _flaky_marker_cell(item):
    """Serial-path worker: fails while its marker file exists."""
    marker = Path(item["marker"])
    if marker.exists():
        marker.unlink()
        raise OSError("transient unit failure")
    return item["value"] * 2


class TestChaosSweep:
    def test_killed_worker_and_corrupt_cache_still_bit_identical(
        self, tmp_path
    ):
        # Two independent spec lists: sweep_cell_specs is a pure function
        # of its arguments, but running a cell spawns children from its
        # SeedSequence in place, so each run needs its own fresh copy.
        reference = parallel_map(_simulated_cell, _specs())
        cells = _specs()

        cache = ResultCache(tmp_path / "cache")
        # Pre-corrupt the cache entry of the first cell.
        corrupt_key = cache.key(_simulated_cell_params(cells[0]))
        (cache.directory / f"{corrupt_key}.json").write_text("{not json")
        # Arm the kill switch: the first worker to claim it dies.
        marker = tmp_path / "kill-once"
        marker.write_text("armed")
        chaos_cells = [dict(cell, kill_marker=str(marker)) for cell in cells]

        with telemetry() as registry:
            survived = parallel_map(
                _chaos_cell,
                chaos_cells,
                n_workers=2,
                cache=cache,
                cache_params=_simulated_cell_params,
                retry_policy=RetryPolicy(
                    max_attempts=3, backoff_seconds=0.01
                ),
            )
            manifest = build_manifest(registry)

        assert survived == reference
        assert not marker.exists()

        resilience = manifest["resilience"]
        assert resilience["total_retries"] >= 1
        assert resilience["retries"].get("worker-crash", 0) >= 1
        assert resilience["pool_respawns"] >= 1
        assert resilience["quarantined_cache_files"] == 1
        assert len(cache.quarantined_files()) == 1
        # The corrupt entry was recomputed and recached, verified this time.
        assert cache.get(corrupt_key) == reference[0]

    def test_unrecoverable_crash_exhausts_retries(self, tmp_path):
        cells = _specs(n_cycles=100)[:2]
        with pytest.raises(RetryExhaustedError) as excinfo:
            parallel_map(
                _always_crashes,
                cells,
                n_workers=2,
                retry_policy=RetryPolicy(
                    max_attempts=2, backoff_seconds=0.01
                ),
            )
        assert excinfo.value.attempts == 2

    def test_serial_retry_path_recovers_transient_failures(self, tmp_path):
        markers = []
        items = []
        for i in range(3):
            marker = tmp_path / f"flake-{i}"
            marker.write_text("armed")
            markers.append(marker)
            items.append({"marker": str(marker), "value": i})

        with telemetry() as registry:
            results = parallel_map(
                _flaky_marker_cell,
                items,
                retry_policy=RetryPolicy(
                    max_attempts=2, backoff_seconds=0.0
                ),
            )
            retries = registry.counter_total("parallel.retries")
        assert results == [0, 2, 4]
        assert retries == 3

    def test_without_policy_errors_propagate_unchanged(self):
        def boom(_item):
            raise KeyError("original")

        with pytest.raises(KeyError):
            parallel_map(boom, [1])


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        cells = _specs(n_cycles=200)
        cache = ResultCache(tmp_path / "cache")

        # "Interrupted" run: only the first half completed and was cached.
        first_half = parallel_map(
            _simulated_cell,
            cells[:2],
            cache=cache,
            cache_params=_simulated_cell_params,
        )
        assert len(cache) == 2

        # Resume over the full grid: cached cells load, the rest compute.
        with telemetry() as registry:
            full = parallel_map(
                _simulated_cell,
                cells,
                cache=cache,
                cache_params=_simulated_cell_params,
            )
            hits = registry.counter_total("parallel.disk_cache.hits")
            computed = registry.counter_total("parallel.tasks")
        assert full[:2] == first_half
        assert hits == 2
        assert computed == len(cells) - 2
        assert len(cache) == len(cells)

        # A third run is served entirely from disk.
        with telemetry() as registry:
            again = parallel_map(
                _simulated_cell,
                cells,
                cache=cache,
                cache_params=_simulated_cell_params,
            )
            assert registry.counter_total("parallel.tasks") == 0
        assert again == full


class TestChecksummedCache:
    def test_roundtrip_is_enveloped_and_verified(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"bw": 3.5})
        raw = json.loads((tmp_path / "k.json").read_text())
        assert raw["__cache_format__"] == 1
        assert raw["sha256"] == ResultCache.value_digest({"bw": 3.5})
        assert cache.get("k") == {"bw": 3.5}
        assert cache.quarantined_files() == []

    def test_checksum_mismatch_quarantined_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"bw": 3.5})
        path = tmp_path / "k.json"
        tampered = json.loads(path.read_text())
        tampered["value"] = {"bw": 9.9}  # bit-rot / manual edit
        path.write_text(json.dumps(tampered))

        with telemetry() as registry:
            assert cache.get("k", "fallback") == "fallback"
            assert (
                registry.counter_total("parallel.disk_cache.quarantined") == 1
            )
        assert "k" not in cache
        assert cache.quarantined_files() == ["k.json"]
        # The quarantined file is preserved verbatim for post-mortem.
        kept = json.loads(
            (cache.quarantine_directory / "k.json").read_text()
        )
        assert kept["value"] == {"bw": 9.9}

    def test_unparseable_entry_quarantined_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad", 7) == 7
        assert cache.quarantined_files() == ["bad.json"]
        assert len(cache) == 0  # quarantine subdir not counted

    def test_legacy_bare_values_still_readable(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "old.json").write_text(json.dumps({"bw": 1.25}))
        assert cache.get("old") == {"bw": 1.25}
        assert cache.quarantined_files() == []
