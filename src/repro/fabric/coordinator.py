"""The fabric coordinator: shard, fan out, watch, re-shard, gather.

:class:`FabricCoordinator` turns one :class:`~repro.fabric.jobs.FabricJob`
into records bit-identical to the single-process executor's:

1. **Build** the job locally (grid + cell map) and optionally satisfy
   cells from a :class:`~repro.analysis.parallel.ResultCache` before any
   process spawns.
2. **Shard** the remaining cells into balanced
   :class:`~repro.fabric.gridslice.GridSlice` shards — one per worker —
   and dispatch them as canonical strings over the worker tree (the
   coordinator only ever talks to its direct children; deeper WORK
   frames are routed down by the workers themselves).
3. **Watch** worker heartbeats.  A worker that dies (pipe EOF, a
   relayed ``dead`` frame, or heartbeat silence past
   ``heartbeat_timeout``) takes its whole subtree with it; only the
   *lost* cells of its shards — assigned minus already-streamed — are
   re-sharded across the survivors, with attempt accounting and
   deterministic backoff from :class:`~repro.resilience.retry.RetryPolicy`.
   Soft per-cell failures (an ERROR frame) retry the same way without
   costing a worker.  If every worker dies, the coordinator finishes
   the outstanding cells in-process rather than failing the run.
4. **Gather** RESULT frames (streamed per cell, relayed verbatim up the
   tree) into grid order, flush fresh records to the cache, and report
   shard map, per-worker timings, retries and deaths — the
   ``"fabric"`` manifest section is digested from the metrics this
   emits.

Because per-cell seeds are spawned by grid index when the job is
*built* (identically by coordinator and every worker), records cannot
depend on shard boundaries, worker count, arity, or crash/retry
interleaving — the property the chaos suite pins down.
"""

from __future__ import annotations

import dataclasses
import queue
import subprocess
import threading
import time
from pathlib import Path

from repro.analysis.parallel import ResultCache, _as_cache
from repro.exceptions import ConfigurationError, RetryExhaustedError
from repro.fabric import wire
from repro.fabric.gridslice import GridSlice
from repro.fabric.jobs import FabricJob, build_job
from repro.fabric.worker import children_of, route_step, spawn_child, subtree_of
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.resilience import chaos
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.deadline import ENV_DEADLINE_MS, Deadline
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FabricLimits",
    "FabricConfig",
    "FabricCoordinator",
    "FabricReport",
    "fabric_simulated_sweep",
]


def _default_retry_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=3, backoff_seconds=0.05)


@dataclasses.dataclass(frozen=True)
class FabricLimits:
    """Timing limits of one fabric run, validated like ``ServiceLimits``.

    Parameters
    ----------
    heartbeat_interval:
        How often each worker emits a heartbeat frame.
    heartbeat_timeout:
        Silence (no frame of any kind) after which a worker is declared
        dead and its lost cells re-sharded.  Must exceed the interval.
    dispatch_deadline_seconds:
        Optional ceiling on one run's dispatch+gather phase, applied
        even when the caller passes no request
        :class:`~repro.resilience.deadline.Deadline`; ``None`` leaves
        the run bounded only by heartbeats and retries.
    teardown_timeout:
        Seconds to wait for worker processes to exit at teardown before
        killing them (the previously hard-coded ``10.0``).
    reader_join_timeout:
        Bound on joining the per-worker reader threads at teardown —
        they are never daemon-abandoned mid-run anymore.
    """

    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 30.0
    dispatch_deadline_seconds: float | None = None
    teardown_timeout: float = 10.0
    reader_join_timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got "
                f"{self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_interval, got "
                f"{self.heartbeat_timeout} <= {self.heartbeat_interval}"
            )
        if (
            self.dispatch_deadline_seconds is not None
            and self.dispatch_deadline_seconds <= 0
        ):
            raise ConfigurationError(
                "dispatch_deadline_seconds must be positive, got "
                f"{self.dispatch_deadline_seconds}"
            )
        if self.teardown_timeout < 0:
            raise ConfigurationError(
                f"teardown_timeout must be >= 0, got {self.teardown_timeout}"
            )
        if self.reader_join_timeout < 0:
            raise ConfigurationError(
                f"reader_join_timeout must be >= 0, got "
                f"{self.reader_join_timeout}"
            )


@dataclasses.dataclass(frozen=True)
class FabricConfig:
    """Tuning knobs of one fabric run.

    Parameters
    ----------
    n_workers:
        Worker *processes* (tree nodes 1..n); the coordinator itself
        computes nothing unless every worker dies.
    arity:
        Fan-out of the worker tree.  ``8`` keeps small fleets flat (the
        coordinator talks to every worker directly); lower it to
        exercise deep trees or to bound per-node pipe count.
    heartbeat_interval:
        Legacy spelling of ``limits.heartbeat_interval`` (kept so
        existing callers and configs keep working); when ``limits`` is
        given explicitly it wins and these mirrors are realigned to it.
    heartbeat_timeout:
        Legacy spelling of ``limits.heartbeat_timeout``; same contract.
    retry_policy:
        Attempt budget and deterministic backoff for lost/failed
        slices; re-shards beyond ``max_attempts`` raise
        :class:`~repro.exceptions.RetryExhaustedError`.
    codec:
        Wire codec name: ``auto`` (msgpack when importable, else JSON),
        ``json``, or ``msgpack``.
    limits:
        The full :class:`FabricLimits` set (heartbeats, dispatch
        deadline, teardown/join bounds).  Built from the legacy
        heartbeat kwargs when omitted, so both spellings validate
        through the same :class:`FabricLimits` checks.
    breaker_policy:
        Per-worker circuit-breaker tuning.  The default trips a
        worker's breaker open on its first recorded failure — a fabric
        worker that died stays suspect until a probe delay elapses.
    """

    n_workers: int = 4
    arity: int = 8
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 30.0
    retry_policy: RetryPolicy = dataclasses.field(
        default_factory=_default_retry_policy
    )
    codec: str = "auto"
    limits: FabricLimits | None = None
    breaker_policy: BreakerPolicy = dataclasses.field(
        default_factory=lambda: BreakerPolicy(
            failure_threshold=1, window_size=4, probe_delay_seconds=1.0
        )
    )

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.arity < 1:
            raise ConfigurationError(f"arity must be >= 1, got {self.arity}")
        if self.limits is None:
            object.__setattr__(
                self,
                "limits",
                FabricLimits(
                    heartbeat_interval=self.heartbeat_interval,
                    heartbeat_timeout=self.heartbeat_timeout,
                ),
            )
        else:
            # Explicit limits win; realign the legacy mirror fields so
            # code reading either spelling sees one consistent truth.
            object.__setattr__(
                self, "heartbeat_interval", self.limits.heartbeat_interval
            )
            object.__setattr__(
                self, "heartbeat_timeout", self.limits.heartbeat_timeout
            )


@dataclasses.dataclass
class FabricReport:
    """What one fabric run did, in grid order.

    ``records`` is ordered by flat grid index — exactly the order the
    single-process executor emits — so callers can compare the two with
    ``==``.  ``shard_map`` is one entry per WORK dispatch (re-shards
    included), keyed by canonical slice strings; it is what lands in
    the ``"fabric"`` manifest section's ``shards`` list.
    """

    records: list[dict]
    grid_axes: tuple[tuple[str, tuple], ...]
    cells: int
    n_workers: int
    arity: int
    shard_map: list[dict]
    worker_timings: dict[int, dict]
    retries: int
    worker_deaths: list[dict]
    cache_hits: int
    local_cells: int


@dataclasses.dataclass
class _Assignment:
    """One dispatched WORK frame and its completion bookkeeping."""

    work: int
    node: int
    grid_slice: GridSlice
    attempt: int
    completed: set[int] = dataclasses.field(default_factory=set)
    failed: set[int] = dataclasses.field(default_factory=set)
    done: bool = False


class FabricCoordinator:
    """Run one job across a tree of worker processes; see module docs."""

    def __init__(
        self,
        job: FabricJob,
        config: FabricConfig | None = None,
        cache: "ResultCache | str | Path | None" = None,
    ):
        self.job = job
        self.config = config or FabricConfig()
        self._cache = _as_cache(cache)
        self._frames: queue.Queue = queue.Queue()
        self._children: dict[int, subprocess.Popen] = {}
        self._alive: set[int] = set()
        self._last_seen: dict[int, float] = {}
        self._pids: dict[int, int] = {}
        self._assignments: dict[int, _Assignment] = {}
        self._work_counter = 0
        self._worker_timings: dict[int, dict] = {}
        self._shard_map: list[dict] = []
        self._worker_deaths: list[dict] = []
        self._retries = 0
        self._local_cells = 0
        self._readers: list[threading.Thread] = []
        self._breakers: dict[int, CircuitBreaker] = {}
        self._deadline: Deadline | None = None

    @property
    def _registry(self):
        # Resolved per use, not captured at construction: callers (the
        # CLI in particular) enable telemetry after building the
        # coordinator, and metrics must land in the live registry.
        return get_registry()

    @property
    def pids(self) -> dict[int, int]:
        """Worker node -> OS pid, as reported by READY frames."""
        return dict(self._pids)

    def _breaker(self, node: int) -> CircuitBreaker:
        """The per-worker dispatch breaker for ``node`` (lazily built)."""
        breaker = self._breakers.get(node)
        if breaker is None:
            breaker = self._breakers[node] = CircuitBreaker(
                f"fabric.worker.{node}", policy=self.config.breaker_policy
            )
        return breaker

    # -- plumbing -----------------------------------------------------

    def _reader_loop(self, node: int, proc: subprocess.Popen) -> None:
        stream = proc.stdout
        while True:
            try:
                frame = wire.read_frame(stream)
            except wire.FrameError:
                frame = None
            if frame is None:
                break
            self._frames.put(("frame", frame))
        self._frames.put(("eof", node))

    def _send_down(self, target: int, frame: dict) -> bool:
        """Route one frame toward worker ``target``; False if unroutable."""
        try:
            hop = route_step(0, target, self.config.arity)
            proc = self._children[hop]
        except (ValueError, KeyError):
            return False
        try:
            wire.write_frame(proc.stdin, frame, self._codec)
        except (BrokenPipeError, ValueError, OSError):
            return False
        return True

    def _spawn_workers(self) -> None:
        hello = {
            "type": "hello",
            "node": 0,
            "n_workers": self.config.n_workers,
            "arity": self.config.arity,
            "codec": self._codec,
            "heartbeat_interval": self.config.limits.heartbeat_interval,
            "job": self.job.to_wire(),
        }
        extra_env = None
        if self._deadline is not None:
            # The remaining budget travels both as a HELLO field (read
            # by every node as the frame is relayed down the tree) and
            # as the worker env var, for tooling spawned off the worker.
            hello["deadline_ms"] = int(self._deadline.header_value())
            extra_env = {ENV_DEADLINE_MS: self._deadline.header_value()}
        now = time.monotonic()
        for node in range(1, self.config.n_workers + 1):
            self._alive.add(node)
            self._last_seen[node] = now
        for node in children_of(0, self.config.arity, self.config.n_workers):
            proc = spawn_child(
                dict(hello, node=node), self._codec, extra_env=extra_env
            )
            self._children[node] = proc
            reader = threading.Thread(
                target=self._reader_loop,
                args=(node, proc),
                daemon=True,
                name=f"fabric-reader-{node}",
            )
            self._readers.append(reader)
            reader.start()
        self._registry.increment(
            "fabric.workers_spawned", value=self.config.n_workers
        )

    def _teardown(self) -> None:
        shutdown = {"type": "shutdown"}
        for proc in self._children.values():
            try:
                wire.write_frame(proc.stdin, shutdown, self._codec)
                proc.stdin.close()
            except (BrokenPipeError, ValueError, OSError):
                pass
        deadline = time.monotonic() + self.config.limits.teardown_timeout
        for proc in self._children.values():
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        # With every child reaped the reader threads are at (or one
        # read from) EOF; join them within the configured bound instead
        # of daemon-abandoning, so no reader outlives its run and races
        # a later coordinator's frame queue.
        join_by = time.monotonic() + self.config.limits.reader_join_timeout
        for reader in self._readers:
            reader.join(timeout=max(0.0, join_by - time.monotonic()))
        leaked = sum(1 for reader in self._readers if reader.is_alive())
        if leaked:
            self._registry.increment("fabric.reader_leaks", value=leaked)
        self._readers.clear()

    # -- scheduling ---------------------------------------------------

    def _dispatch(self, grid_slice: GridSlice, node: int, attempt: int) -> None:
        # Chaos site ``fabric.dispatch``: a ``kill_worker`` rule kills
        # the child process this dispatch would route through, right
        # before the WORK frame is sent — the mid-slice crash the
        # re-shard path must absorb without changing a single record.
        if chaos.inject("fabric.dispatch") == "kill_worker":
            try:
                hop = route_step(0, node, self.config.arity)
            except ValueError:
                hop = None
            proc = self._children.get(hop) if hop is not None else None
            if proc is not None:
                proc.kill()
        self._work_counter += 1
        work = self._work_counter
        assignment = _Assignment(
            work=work, node=node, grid_slice=grid_slice, attempt=attempt
        )
        self._assignments[work] = assignment
        canonical = grid_slice.canonical()
        self._shard_map.append(
            {
                "work": work,
                "node": node,
                "slice": canonical,
                "cells": len(grid_slice),
                "attempt": attempt,
            }
        )
        self._registry.increment("fabric.slices", status="dispatched")
        self._registry.record_event(
            "fabric.shard",
            node=node,
            slice=canonical,
            cells=len(grid_slice),
            attempt=attempt,
        )
        if not self._send_down(
            node, {"type": "work", "to": node, "work": work, "slice": canonical}
        ):
            # The route collapsed under us; treat it like a dead worker.
            self._handle_death(node, "unroutable")

    def _alive_ring(self) -> list[int]:
        return sorted(self._alive)

    def _shard_across(
        self, grid_slice: GridSlice, attempt: int
    ) -> None:
        """Split ``grid_slice`` over the surviving workers and dispatch.

        Workers whose dispatch breaker is open are skipped while any
        breaker-clear worker survives; when every surviving breaker is
        open (or probing) the plain alive ring is used — a fully tripped
        fleet still makes progress rather than deadlocking.
        """
        alive = self._alive_ring()
        if not alive:
            self._run_locally(grid_slice)
            return
        preferred = [n for n in alive if self._breaker(n).allow()]
        ring = preferred or alive
        for shard, node in zip(grid_slice.split(len(ring)), ring):
            self._dispatch(shard, node, attempt)

    def _retry_slice(
        self, grid_slice: GridSlice, attempt: int, reason: str
    ) -> None:
        """Re-shard a lost/failed slice after policy-checked backoff.

        Honors the run's :class:`~repro.resilience.deadline.Deadline`:
        the backoff sleep never extends past the remaining budget, and
        an already-expired budget raises before any re-dispatch.
        """
        if self._deadline is not None:
            self._deadline.check("fabric.coordinator")
        if not self.config.retry_policy.should_retry(attempt):
            raise RetryExhaustedError(
                f"fabric slice {grid_slice.canonical()!r} failed after "
                f"{attempt} attempt(s) ({reason})",
                attempts=attempt,
                last_error=None,
            )
        self._retries += 1
        self._registry.increment("fabric.retries", reason=reason)
        self._registry.record_event(
            "fabric.reshard",
            slice=grid_slice.canonical(),
            attempt=attempt + 1,
            reason=reason,
        )
        backoff = self.config.retry_policy.delay(
            attempt, token=grid_slice.canonical()
        )
        if self._deadline is not None:
            backoff = self._deadline.bounded(backoff)
        time.sleep(backoff)
        self._shard_across(grid_slice, attempt + 1)

    def _handle_death(self, node: int, reason: str) -> None:
        """Mark ``node``'s subtree dead and re-shard its lost cells."""
        lost_nodes = [
            n
            for n in subtree_of(node, self.config.arity, self.config.n_workers)
            if n in self._alive
        ]
        if not lost_nodes:
            return
        for lost in lost_nodes:
            self._alive.discard(lost)
            self._breaker(lost).record_failure()
            self._worker_deaths.append({"node": lost, "reason": reason})
            self._registry.increment("fabric.worker_deaths", reason=reason)
            self._registry.record_event(
                "fabric.worker_dead", node=lost, reason=reason
            )
        proc = self._children.pop(node, None)
        if proc is not None:
            try:
                proc.stdin.close()
            except (OSError, ValueError):
                pass
            proc.kill()
            proc.wait()
        dead_set = set(lost_nodes)
        for assignment in list(self._assignments.values()):
            if assignment.done or assignment.node not in dead_set:
                continue
            assignment.done = True
            self._registry.increment("fabric.slices", status="lost")
            remaining = assignment.grid_slice.indices - assignment.completed
            if not remaining:
                continue
            lost_slice = GridSlice.from_indices(
                assignment.grid_slice.grid, remaining
            )
            self._retry_slice(lost_slice, assignment.attempt, reason)

    def _run_locally(self, grid_slice: GridSlice) -> None:
        """Last resort with no surviving workers: evaluate in-process."""
        for index in grid_slice:
            if index in self._results:
                continue
            if self._deadline is not None:
                self._deadline.check("fabric.coordinator")
            self._results[index] = self._plan.run_cell(index)
            self._local_cells += 1
            self._registry.increment("fabric.local_cells")
            if self._cache is not None and self._cache_keys.get(index):
                self._cache.put(self._cache_keys[index], self._results[index])

    # -- the run ------------------------------------------------------

    def run(self, deadline: Deadline | None = None) -> FabricReport:
        """Execute the job; return records in grid order.

        ``deadline`` bounds the dispatch+gather phase: frame waits and
        re-shard backoffs are clipped to the remaining budget, and
        expiry raises a structured
        :class:`~repro.exceptions.DeadlineExceededError` within one
        heartbeat interval.  When omitted,
        ``config.limits.dispatch_deadline_seconds`` (if set) starts a
        budget of its own.
        """
        if deadline is None:
            ceiling = self.config.limits.dispatch_deadline_seconds
            if ceiling is not None:
                deadline = Deadline(ceiling * 1000.0)
        self._deadline = deadline
        self._codec = wire.default_codec(self.config.codec)
        self._plan = build_job(self.job)
        plan = self._plan
        all_indices = sorted(plan.cells)
        self._results: dict[int, dict] = {}
        self._cache_keys: dict[int, str] = {}

        cache_hits = 0
        if self._cache is not None and plan.cache_params is not None:
            for index in all_indices:
                key = ResultCache.key(plan.cache_params(plan.cells[index]))
                self._cache_keys[index] = key
                hit = self._cache.get(key, ResultCache._MISSING)
                if hit is not ResultCache._MISSING:
                    self._results[index] = hit
                    cache_hits += 1
        if cache_hits:
            self._registry.increment("fabric.cache_hits", value=cache_hits)

        outstanding = set(all_indices) - set(self._results)
        with span(
            "fabric.run",
            job=self.job.kind,
            cells=len(all_indices),
            workers=self.config.n_workers,
        ):
            if outstanding:
                self._spawn_workers()
                try:
                    self._gather(plan, outstanding)
                finally:
                    self._teardown()
                    if self._cache is not None:
                        self._cache.flush()

        records = [self._results[index] for index in all_indices]
        return FabricReport(
            records=records,
            grid_axes=plan.grid.axes,
            cells=len(all_indices),
            n_workers=self.config.n_workers,
            arity=self.config.arity,
            shard_map=self._shard_map,
            worker_timings=self._worker_timings,
            retries=self._retries,
            worker_deaths=self._worker_deaths,
            cache_hits=cache_hits,
            local_cells=self._local_cells,
        )

    def _gather(self, plan, outstanding: set[int]) -> None:
        self._shard_across(
            GridSlice.from_indices(plan.grid, outstanding), attempt=1
        )
        while outstanding - set(self._results):
            if not self._alive:
                # Everyone is gone; anything not yet streamed runs here.
                self._run_locally(
                    GridSlice.from_indices(
                        plan.grid, outstanding - set(self._results)
                    )
                )
                return
            wait = self.config.limits.heartbeat_interval
            if self._deadline is not None:
                self._deadline.check("fabric.coordinator")
                wait = max(1e-3, self._deadline.bounded(wait))
            try:
                kind, payload = self._frames.get(timeout=wait)
            except queue.Empty:
                self._check_heartbeats()
                continue
            if kind == "eof":
                self._handle_death(payload, "pipe-eof")
                continue
            self._handle_frame(payload)
            self._check_heartbeats()
        self._drain_done_frames()

    def _drain_done_frames(self) -> None:
        """Collect trailing DONE frames after the last result arrived.

        RESULT frames stream per cell, so the loop above can satisfy
        every outstanding index while a worker's slice-summary DONE
        (cells, busy_seconds) is still in the pipe; without this grace
        pass the last-finishing worker would be missing from
        ``worker_timings``.
        """
        deadline = time.monotonic() + self.config.heartbeat_interval
        while (
            any(not a.done for a in self._assignments.values())
            and time.monotonic() < deadline
        ):
            try:
                kind, payload = self._frames.get(timeout=0.05)
            except queue.Empty:
                continue
            if kind == "eof":
                self._handle_death(payload, "pipe-eof")
            else:
                self._handle_frame(payload)

    def _handle_frame(self, frame: dict) -> None:
        node = int(frame.get("node", -1))
        if node in self._alive:
            self._last_seen[node] = time.monotonic()
        kind = frame.get("type")
        if kind == "ready":
            self._pids[node] = int(frame.get("pid", 0))
        elif kind == "heartbeat":
            self._registry.increment("fabric.heartbeats")
        elif kind == "result":
            self._handle_result(frame)
        elif kind == "done":
            self._handle_done(frame)
        elif kind == "error":
            self._handle_error(frame)
        elif kind == "dead":
            self._handle_death(int(frame["node"]), "reported")

    def _handle_result(self, frame: dict) -> None:
        assignment = self._assignments.get(int(frame.get("work", -1)))
        index = int(frame["index"])
        if assignment is not None:
            assignment.completed.add(index)
        if index in self._results:
            return  # duplicate from a raced retry; first write wins
        self._results[index] = frame["record"]
        self._registry.increment("fabric.results")
        if self._cache is not None and self._cache_keys.get(index):
            self._cache.put(self._cache_keys[index], frame["record"])

    def _handle_done(self, frame: dict) -> None:
        work = int(frame.get("work", -1))
        assignment = self._assignments.get(work)
        if assignment is None or assignment.done:
            return
        assignment.done = True
        self._registry.increment("fabric.slices", status="done")
        node = assignment.node
        self._breaker(node).record_success()
        timing = self._worker_timings.setdefault(
            node, {"cells": 0, "busy_seconds": 0.0, "slices": 0}
        )
        timing["cells"] += int(frame.get("cells", 0))
        timing["busy_seconds"] = round(
            timing["busy_seconds"] + float(frame.get("busy_seconds", 0.0)), 6
        )
        timing["slices"] += 1
        self._registry.record_event(
            "fabric.worker_done",
            node=node,
            work=work,
            cells=int(frame.get("cells", 0)),
        )
        # Cells that soft-failed on this worker retry elsewhere.
        if assignment.failed:
            failed = GridSlice.from_indices(
                assignment.grid_slice.grid,
                assignment.failed - set(self._results),
            )
            if failed:
                self._retry_slice(failed, assignment.attempt, "cell-error")

    def _handle_error(self, frame: dict) -> None:
        if frame.get("fatal"):
            raise ConfigurationError(
                f"fabric worker {frame.get('node')} failed to build the "
                f"job: {frame.get('error')}"
            )
        assignment = self._assignments.get(int(frame.get("work", -1)))
        if assignment is None:
            return
        index = frame.get("index")
        if index is not None:
            assignment.failed.add(int(index))
        self._registry.increment(
            "fabric.cell_errors", node=str(frame.get("node"))
        )
        self._registry.record_event(
            "fabric.cell_error",
            node=frame.get("node"),
            index=index,
            error=str(frame.get("error", ""))[:200],
        )

    def _check_heartbeats(self) -> None:
        now = time.monotonic()
        for node in self._alive_ring():
            if now - self._last_seen[node] > self.config.heartbeat_timeout:
                self._handle_death(node, "heartbeat-timeout")


def fabric_simulated_sweep(
    scheme: str,
    n_processors: int,
    bus_counts,
    rates,
    n_memories: int | None = None,
    n_cycles: int = 20_000,
    seed: int = 0,
    backend: str = "auto",
    n_workers: int = 4,
    arity: int = 8,
    cache: "ResultCache | str | Path | None" = None,
    retry_policy: RetryPolicy | None = None,
    limits: FabricLimits | None = None,
    deadline: Deadline | None = None,
    **network_kwargs,
) -> list[dict]:
    """Monte-Carlo bandwidth sweep on the fabric; records in grid order.

    The distributed counterpart of
    :func:`repro.analysis.parallel.simulated_bandwidth_sweep`: identical
    arguments produce ``==``-identical records, the work just runs
    across ``n_workers`` fabric processes instead of a fork pool.
    ``seed`` must be an int here (it travels as JSON in the job
    description).  ``limits`` and ``deadline`` pass straight through to
    :class:`FabricConfig` / :meth:`FabricCoordinator.run`.
    """
    params: dict = {
        "scheme": scheme,
        "N": n_processors,
        "bus_counts": list(bus_counts),
        "rates": list(rates),
        "n_cycles": n_cycles,
        "seed": seed,
        "backend": backend,
    }
    if n_memories is not None:
        params["M"] = n_memories
    if network_kwargs:
        params["network_kwargs"] = dict(network_kwargs)
    config_kwargs: dict = {"n_workers": n_workers, "arity": arity}
    if retry_policy is not None:
        config_kwargs["retry_policy"] = retry_policy
    if limits is not None:
        config_kwargs["limits"] = limits
    coordinator = FabricCoordinator(
        FabricJob(kind="sweep", params=params),
        FabricConfig(**config_kwargs),
        cache=cache,
    )
    return coordinator.run(deadline=deadline).records
