"""Tests for sweeps, cross-scheme comparison and table rendering."""

import pytest

from repro.analysis.compare import compare_schemes
from repro.analysis.sweep import (
    SweepResult,
    bandwidth_sweep,
    bandwidth_sweep_with_skips,
    bus_count_sweep,
    bus_count_sweep_with_skips,
    paper_model_pair,
)
from repro.analysis.tables import render_matrix, render_table
from repro.core.request_models import UniformRequestModel


class TestPaperModelPair:
    def test_contains_both_models(self):
        models = paper_model_pair(8, 1.0)
        assert set(models) == {"hier", "unif"}
        assert models["hier"].rate == 1.0
        assert models["unif"].n_memories == 8


class TestBandwidthSweep:
    def test_grid_shape(self):
        records = bandwidth_sweep("full", 8, bus_counts=(1, 2, 4), rates=(1.0,))
        assert len(records) == 6  # 3 bus counts x 2 models

    def test_record_fields(self):
        record = bandwidth_sweep("full", 8, (2,), (0.5,))[0]
        assert set(record) == {"scheme", "N", "M", "B", "r", "model", "bandwidth"}

    def test_skips_invalid_configurations(self):
        # Partial g=2 cannot build B=3.
        records = bandwidth_sweep(
            "partial", 8, bus_counts=(2, 3, 4), rates=(1.0,)
        )
        assert {r["B"] for r in records} == {2, 4}

    def test_hier_beats_unif_in_records(self):
        records = bandwidth_sweep("full", 8, (4,), (1.0,))
        by_model = {r["model"]: r["bandwidth"] for r in records}
        assert by_model["hier"] >= by_model["unif"]


class TestSweepSkipAuditing:
    def test_with_skips_reports_invalid_partial_counts(self):
        result = bandwidth_sweep_with_skips(
            "partial", 8, bus_counts=(2, 3, 4), rates=(1.0,)
        )
        assert isinstance(result, SweepResult)
        assert {r["B"] for r in result.records} == {2, 4}
        assert [(c.scheme, c.n_buses) for c in result.skipped] == [
            ("partial", 3)
        ]
        assert "divide" in result.skipped[0].reason

    def test_skips_deduplicated_across_rates_and_models(self):
        result = bandwidth_sweep_with_skips(
            "partial", 8, bus_counts=(2, 3, 4), rates=(1.0, 0.5)
        )
        # 2 rates x 2 models see the same structural skip: reported once.
        assert len(result.skipped) == 1

    def test_bus_count_exceeding_modules_is_audited(self):
        result = bandwidth_sweep_with_skips(
            "full", 8, bus_counts=(8, 9), rates=(1.0,)
        )
        assert {r["B"] for r in result.records} == {8}
        assert [c.n_buses for c in result.skipped] == [9]
        assert "exceeds" in result.skipped[0].reason

    def test_records_match_classic_sweep(self):
        grid = dict(bus_counts=(1, 2, 3, 4), rates=(1.0, 0.5))
        assert (
            bandwidth_sweep_with_skips("partial", 8, **grid).records
            == bandwidth_sweep("partial", 8, **grid)
        )

    def test_classic_sweep_logs_skips(self, caplog):
        with caplog.at_level("DEBUG", logger="repro.analysis.sweep"):
            bandwidth_sweep("partial", 8, bus_counts=(3,), rates=(1.0,))
        assert any("skipping scheme=partial" in m for m in caplog.messages)

    def test_bus_count_sweep_with_skips(self):
        values, skipped = bus_count_sweep_with_skips(
            "partial", 8, UniformRequestModel(8, 8), bus_counts=(2, 3, 4)
        )
        assert sorted(values) == [2, 4]
        assert [c.n_buses for c in skipped] == [3]
        assert values == bus_count_sweep(
            "partial", 8, UniformRequestModel(8, 8), bus_counts=(2, 3, 4)
        )


class TestBusCountSweep:
    def test_defaults_to_full_range(self):
        out = bus_count_sweep("full", 8, UniformRequestModel(8, 8))
        assert sorted(out) == list(range(1, 9))

    def test_monotone_in_buses(self):
        out = bus_count_sweep("full", 8, UniformRequestModel(8, 8))
        values = [out[b] for b in sorted(out)]
        assert values == sorted(values)

    def test_explicit_bus_counts(self):
        out = bus_count_sweep(
            "single", 8, UniformRequestModel(8, 8), bus_counts=(2, 4)
        )
        assert sorted(out) == [2, 4]


class TestCompareSchemes:
    def test_sorted_by_bandwidth(self):
        rows = compare_schemes(16, 8, UniformRequestModel(16, 16))
        bandwidths = [row.bandwidth for row in rows]
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_contains_expected_schemes(self):
        rows = compare_schemes(16, 8, UniformRequestModel(16, 16))
        assert {row.scheme for row in rows} == {
            "full", "partial", "kclass", "single", "crossbar"
        }

    def test_ordering_matches_paper(self):
        rows = {
            row.scheme: row
            for row in compare_schemes(16, 8, UniformRequestModel(16, 16))
        }
        assert rows["full"].bandwidth >= rows["partial"].bandwidth
        assert rows["partial"].bandwidth >= rows["single"].bandwidth
        assert rows["single"].bandwidth_per_connection >= (
            rows["full"].bandwidth_per_connection
        )

    def test_skips_impossible_schemes(self):
        # B = 3 is odd: partial g=2 drops out.
        rows = compare_schemes(9, 3, UniformRequestModel(9, 9))
        assert "partial" not in {row.scheme for row in rows}

    def test_as_row(self):
        row = compare_schemes(8, 4, UniformRequestModel(8, 8))[0].as_row()
        assert "MBW" in row and "MBW/conn" in row


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.50" in text and "0.12" in text  # two-decimal floats

    def test_render_table_missing_keys_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert text.count("2") >= 1

    def test_render_table_infers_columns(self):
        text = render_table([{"x": 1}, {"y": 2}])
        assert "x" in text and "y" in text

    def test_render_matrix_layout(self):
        text = render_matrix(
            [1, 2],
            ["c1", "c2"],
            {(1, "c1"): 0.5, (2, "c2"): 1.5},
            corner="B",
        )
        assert "B" in text
        assert "0.50" in text and "1.50" in text
