"""Span tracing: nesting paths, timings, attributes, disabled no-ops."""

from __future__ import annotations

import pytest

from repro.obs import current_span_path, span, telemetry
from repro.obs.spans import _NOOP_SPAN


def test_span_is_noop_while_disabled():
    assert span("anything", B=4) is _NOOP_SPAN
    with span("outer"):
        assert current_span_path() is None


def test_span_records_start_and_end_events():
    with telemetry() as registry:
        with span("sweep.bandwidth", scheme="full", B=8):
            pass
    start, end = registry.events()
    assert start["kind"] == "span_start"
    assert start["span"] == "sweep.bandwidth"
    assert start["scheme"] == "full"
    assert start["B"] == 8
    assert end["kind"] == "span_end"
    assert end["span"] == "sweep.bandwidth"
    assert end["wall_seconds"] >= 0.0
    assert end["cpu_seconds"] >= 0.0
    assert "error" not in end


def test_nested_spans_build_slash_paths():
    with telemetry() as registry:
        with span("experiment.table5"):
            assert current_span_path() == "experiment.table5"
            with span("sweep.bandwidth"):
                assert (
                    current_span_path()
                    == "experiment.table5/sweep.bandwidth"
                )
            assert current_span_path() == "experiment.table5"
    assert current_span_path() is None
    ends = [e["span"] for e in registry.events() if e["kind"] == "span_end"]
    assert ends == ["experiment.table5/sweep.bandwidth", "experiment.table5"]


def test_span_timings_feed_histograms():
    with telemetry() as registry:
        with span("phase.a"):
            pass
        with span("phase.a"):
            pass
    histograms = registry.histograms()
    assert histograms[("span.phase.a.wall_seconds", ())].count == 2
    assert histograms[("span.phase.a.cpu_seconds", ())].count == 2


def test_set_attribute_lands_on_end_event():
    with telemetry() as registry:
        with span("sweep.bandwidth") as sweep_span:
            sweep_span.set_attribute("records", 42)
    end = [e for e in registry.events() if e["kind"] == "span_end"][0]
    assert end["records"] == 42


def test_exception_is_recorded_and_stack_unwinds():
    with telemetry() as registry:
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        assert current_span_path() is None
    end = [e for e in registry.events() if e["kind"] == "span_end"][0]
    assert end["error"] == "ValueError"
    assert end["wall_seconds"] >= 0.0


def test_span_exposes_measured_durations():
    with telemetry():
        with span("timed") as timed:
            pass
    assert timed.wall_seconds is not None and timed.wall_seconds >= 0.0
    assert timed.cpu_seconds is not None and timed.cpu_seconds >= 0.0


def test_noop_span_accepts_the_live_interface():
    noop = span("disabled")
    assert noop is _NOOP_SPAN
    noop.set_attribute("anything", 1)
    with noop:
        pass
    assert noop.path is None
