"""Property-based invariants of surface lookups, including interpolation.

Surface serving must preserve the structural laws pinned on the closed
forms in ``tests/properties/test_bandwidth_properties.py``: bandwidth
monotone non-decreasing in the bus count and the request rate, and
bounded by ``min(B, M, N * r)``.  Exact gridpoint reads inherit them
trivially (they *are* the closed-form values); the point of this suite
is that linear interpolation along the rate axis cannot break them
either — a convex combination of two values drawn from a monotone
bounded curve stays monotone and bounded.

Runs under the derandomized "ci" profile registered in
``tests/conftest.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.service.protocol import parse_query
from repro.surfaces import materialize_surface, signature_of

BUS_SCHEMES = ("full", "single", "partial", "kclass")
SCHEMES = BUS_SCHEMES + ("crossbar",)

TOL = 1e-9

# Power-of-two machines keep every scheme structurally valid (B divides
# M for "single", the default g = 2 divides B for "partial", K = B
# classes split M evenly for "kclass"); N in {8, 16} keeps the
# per-signature materialization cheap enough for a property sweep.
n_exponents = st.integers(min_value=3, max_value=4)
rates = st.floats(min_value=0.05, max_value=1.0)

_SURFACES: dict = {}


def _surface(scheme: str, n: int):
    """One materialized surface per (scheme, N), cached across examples."""
    key = (scheme, n)
    if key not in _SURFACES:
        query = parse_query(
            {"scheme": scheme, "N": n, "M": n, "B": 1, "r": 1.0}
        )
        _SURFACES[key] = materialize_surface(signature_of(query))
    return _SURFACES[key]


def _lookup(scheme: str, n: int, n_buses: int, rate: float) -> float:
    """Serve exactly when on-grid, interpolate otherwise — like the store."""
    surface = _surface(scheme, n)
    value = surface.exact(n_buses, rate)
    if value is None:
        value = surface.interpolate(n_buses, rate)
    assert value is not None
    return value


def _valid_bus_exponents(scheme: str, n_exp: int) -> st.SearchStrategy[int]:
    low = 1 if scheme == "partial" else 0
    return st.integers(min_value=low, max_value=n_exp)


@pytest.mark.parametrize("scheme", BUS_SCHEMES)
@given(n_exp=n_exponents, data=st.data(), rate=rates)
def test_lookup_monotone_in_bus_count(scheme, n_exp, data, rate):
    exps = data.draw(
        st.lists(
            _valid_bus_exponents(scheme, n_exp),
            min_size=2, max_size=2, unique=True,
        ),
        label="bus exponents",
    )
    b_low, b_high = (2**e for e in sorted(exps))
    n = 2**n_exp
    assert (
        _lookup(scheme, n, b_low, rate)
        <= _lookup(scheme, n, b_high, rate) + TOL
    )


@pytest.mark.parametrize("scheme", SCHEMES)
@given(n_exp=n_exponents, data=st.data(), rate_pair=st.tuples(rates, rates))
def test_lookup_monotone_in_request_rate(scheme, n_exp, data, rate_pair):
    b_exp = data.draw(_valid_bus_exponents(scheme, n_exp), label="B exponent")
    n, n_buses = 2**n_exp, 2**b_exp
    r_low, r_high = sorted(rate_pair)
    assert (
        _lookup(scheme, n, n_buses, r_low)
        <= _lookup(scheme, n, n_buses, r_high) + TOL
    )


@pytest.mark.parametrize("scheme", SCHEMES)
@given(n_exp=n_exponents, data=st.data(), rate=rates)
def test_lookup_bounded_by_buses_modules_and_load(scheme, n_exp, data, rate):
    b_exp = data.draw(_valid_bus_exponents(scheme, n_exp), label="B exponent")
    n, n_buses = 2**n_exp, 2**b_exp
    value = _lookup(scheme, n, n_buses, rate)
    assert value >= 0.0
    if scheme != "crossbar":  # the crossbar has no bus bottleneck
        assert value <= n_buses + TOL
    assert value <= n + TOL  # M = n modules
    assert value <= n * rate + TOL  # expected offered load


@pytest.mark.parametrize("scheme", SCHEMES)
@given(n_exp=n_exponents, data=st.data(), rate=rates)
def test_interpolated_points_stay_between_their_gridpoints(
    scheme, n_exp, data, rate
):
    b_exp = data.draw(_valid_bus_exponents(scheme, n_exp), label="B exponent")
    n, n_buses = 2**n_exp, 2**b_exp
    surface = _surface(scheme, n)
    if surface.exact(n_buses, rate) is not None:
        return  # landed on a gridpoint: nothing to bracket
    import numpy as np

    hi = int(np.searchsorted(surface.rates, rate))
    lo_v = surface.exact(n_buses, float(surface.rates[hi - 1]))
    hi_v = surface.exact(n_buses, float(surface.rates[hi]))
    value = surface.interpolate(n_buses, rate)
    assert min(lo_v, hi_v) - TOL <= value <= max(lo_v, hi_v) + TOL
