"""Stochastic fault/repair timelines through both simulation backends.

The load-bearing property is *differential*: a schedule that fails a set
``F`` at cycle 0 and never repairs must reproduce the static
``DegradedNetwork(base, F)`` run cycle-for-cycle, and the vectorized
segmented path must agree with the loop path on grant counts for any
schedule — the same backend-equivalence invariant the healthy simulator
pins, extended across fault boundaries.
"""

import numpy as np
import pytest

from repro import paper_two_level_model, telemetry
from repro.exceptions import ConfigurationError, FaultError, SimulationError
from repro.faults.injection import fail_buses
from repro.faults.stochastic import (
    ExponentialFaultProcess,
    FaultEvent,
    FaultSchedule,
    simulate_with_faults,
)
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology.factory import build_network

SCHEMES = ("full", "partial", "single", "kclass")


def _network(scheme):
    return build_network(scheme, 8, 8, 4)


def _model():
    return paper_two_level_model(8, rate=1.0)


class TestFaultSchedule:
    def test_events_sorted_and_exposed(self):
        schedule = FaultSchedule(
            [FaultEvent(50, 1, "fail"), FaultEvent(10, 0, "fail")]
        )
        assert [e.cycle for e in schedule] == [10, 50]
        assert len(schedule) == 2

    def test_static_factory(self):
        schedule = FaultSchedule.static({2, 0})
        assert [(e.cycle, e.bus, e.kind) for e in schedule] == [
            (0, 0, "fail"),
            (0, 2, "fail"),
        ]

    def test_segments_partition_the_run(self):
        schedule = FaultSchedule(
            [
                FaultEvent(10, 0, "fail"),
                FaultEvent(30, 0, "repair"),
                FaultEvent(30, 1, "fail"),
            ]
        )
        segments = schedule.segments(50, 4)
        assert [(s.start, s.stop) for s in segments] == [
            (0, 10),
            (10, 30),
            (30, 50),
        ]
        assert [set(s.failed) for s in segments] == [set(), {0}, {1}]
        assert sum(s.n_cycles for s in segments) == 50

    def test_idempotent_events(self):
        schedule = FaultSchedule(
            [
                FaultEvent(5, 0, "fail"),
                FaultEvent(6, 0, "fail"),
                FaultEvent(7, 1, "repair"),
            ]
        )
        assert schedule.failed_at(8, 4) == frozenset({0})

    def test_events_beyond_horizon_ignored(self):
        schedule = FaultSchedule([FaultEvent(100, 0, "fail")])
        assert len(schedule.segments(50, 4)) == 1

    def test_invalid_events_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(-1, 0, "fail")
        with pytest.raises(FaultError):
            FaultEvent(0, -1, "fail")
        with pytest.raises(FaultError):
            FaultEvent(0, 0, "explode")
        with pytest.raises(FaultError):
            FaultSchedule([FaultEvent(0, 9, "fail")]).segments(10, 4)


class TestExponentialFaultProcess:
    def test_schedule_is_deterministic_in_seed(self):
        process = ExponentialFaultProcess(mtbf=300.0, mttr=60.0)
        a = process.schedule(4, 2_000, seed=9)
        b = process.schedule(4, 2_000, seed=9)
        assert list(a) == list(b)
        assert list(a) != list(process.schedule(4, 2_000, seed=10))

    def test_fail_and_repair_alternate_per_bus(self):
        process = ExponentialFaultProcess(mtbf=100.0, mttr=20.0)
        schedule = process.schedule(2, 5_000, seed=0)
        for bus in range(2):
            kinds = [e.kind for e in schedule if e.bus == bus]
            assert kinds[::2] == ["fail"] * len(kinds[::2])
            assert kinds[1::2] == ["repair"] * len(kinds[1::2])

    def test_steady_state_availability(self):
        process = ExponentialFaultProcess(mtbf=400.0, mttr=100.0)
        assert process.steady_state_availability() == pytest.approx(0.8)

    def test_invalid_parameters(self):
        with pytest.raises(FaultError):
            ExponentialFaultProcess(mtbf=0.0, mttr=1.0)
        with pytest.raises(FaultError):
            ExponentialFaultProcess(mtbf=1.0, mttr=-2.0)


class TestDifferentialEquivalence:
    """Never-repaired schedule == static DegradedNetwork, cycle-for-cycle."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_loop_matches_static_degraded_run(self, scheme):
        network = _network(scheme)
        model = _model()
        faulty = simulate_with_faults(
            network,
            model,
            schedule=FaultSchedule.static({1}),
            n_cycles=400,
            seed=7,
            backend="loop",
        )
        reference = MultiprocessorSimulator(
            fail_buses(network, {1}), model, seed=7
        ).run(400)
        assert np.array_equal(
            faulty.result.grant_counts, reference.grant_counts
        )
        assert faulty.bandwidth == pytest.approx(reference.bandwidth)

    @pytest.mark.parametrize("scheme", ("full", "partial", "single"))
    def test_vectorized_matches_loop(self, scheme):
        network = _network(scheme)
        model = _model()
        schedule = FaultSchedule(
            [
                FaultEvent(100, 0, "fail"),
                FaultEvent(250, 0, "repair"),
                FaultEvent(300, 2, "fail"),
            ]
        )
        loop = simulate_with_faults(
            network, model, schedule=schedule, n_cycles=500, seed=3,
            backend="loop",
        )
        vec = simulate_with_faults(
            network, model, schedule=schedule, n_cycles=500, seed=3,
            backend="vectorized",
        )
        assert np.array_equal(
            loop.result.grant_counts, vec.result.grant_counts
        )
        assert loop.result.requests_per_cycle == pytest.approx(
            vec.result.requests_per_cycle
        )

    def test_empty_schedule_matches_healthy_run(self):
        network = _network("full")
        model = _model()
        faulty = simulate_with_faults(
            network, model, n_cycles=300, seed=5
        )
        healthy = MultiprocessorSimulator(network, model, seed=5).run(300)
        assert faulty.bandwidth == pytest.approx(healthy.bandwidth)
        assert faulty.n_segments == 1
        assert faulty.degraded_cycle_fraction == 0.0

    def test_kclass_falls_back_to_loop(self):
        faulty = simulate_with_faults(
            _network("kclass"),
            _model(),
            schedule=FaultSchedule.static({1}),
            n_cycles=200,
            seed=0,
        )
        assert faulty.backend == "loop"
        with pytest.raises(SimulationError):
            simulate_with_faults(
                _network("kclass"),
                _model(),
                schedule=FaultSchedule.static({1}),
                n_cycles=200,
                seed=0,
                backend="vectorized",
            )


class TestMidRunBehaviour:
    def test_blackout_cycles_record_zero_grants(self):
        schedule = FaultSchedule(
            [FaultEvent(10, b, "fail") for b in range(4)]
            + [FaultEvent(50, b, "repair") for b in range(4)]
        )
        faulty = simulate_with_faults(
            _network("partial"), _model(), schedule=schedule,
            n_cycles=100, seed=3, backend="loop",
        )
        assert faulty.blackout_cycles == 40
        assert faulty.min_alive_buses == 0
        assert (np.asarray(faulty.result.grant_counts)[10:50] == 0).all()
        # Requests are still issued during the blackout (and dropped).
        assert faulty.result.requests_per_cycle > 0

    def test_degraded_fraction_counts_measured_window(self):
        schedule = FaultSchedule([FaultEvent(100, 0, "fail")])
        faulty = simulate_with_faults(
            _network("full"), _model(), schedule=schedule,
            n_cycles=200, seed=0,
        )
        assert faulty.degraded_cycle_fraction == pytest.approx(0.5)
        assert faulty.n_fail_events == 1
        assert faulty.n_repair_events == 0

    def test_resubmit_holds_requests_without_crashing(self):
        faulty = simulate_with_faults(
            _network("partial"),
            _model(),
            schedule=FaultSchedule.static({0, 1}),
            n_cycles=300,
            seed=3,
            blocked="resubmit",
        )
        # Group 0's modules are unreachable: their requests are held and
        # resubmitted every cycle, never serviced, never an exception.
        assert faulty.backend == "loop"
        assert faulty.resubmitted_requests > 0
        assert faulty.bandwidth > 0.0

    def test_telemetry_counters_emitted(self):
        schedule = FaultSchedule(
            [FaultEvent(10, 0, "fail"), FaultEvent(20, 0, "repair")]
        )
        with telemetry() as registry:
            simulate_with_faults(
                _network("full"), _model(), schedule=schedule,
                n_cycles=50, seed=0,
            )
            assert registry.counter_total("fault.runs") == 1
            assert registry.counter_total("fault.events") == 2
            assert registry.counter_total("fault.degraded_cycles") == 10


class TestValidation:
    def test_crossbar_with_faults_rejected(self):
        crossbar = build_network("crossbar", 8, 8, 8)
        with pytest.raises(FaultError):
            simulate_with_faults(
                crossbar, _model(), schedule=FaultSchedule.static({0}),
                n_cycles=100,
            )

    def test_bad_backend_and_blocked_policy(self):
        with pytest.raises(ConfigurationError):
            simulate_with_faults(
                _network("full"), _model(), n_cycles=10, backend="gpu"
            )
        with pytest.raises(ConfigurationError):
            simulate_with_faults(
                _network("full"), _model(), n_cycles=10, blocked="queue"
            )

    def test_bad_cycle_counts(self):
        with pytest.raises(SimulationError):
            simulate_with_faults(_network("full"), _model(), n_cycles=0)
        with pytest.raises(SimulationError):
            simulate_with_faults(
                _network("full"), _model(), n_cycles=10, warmup=-1
            )
