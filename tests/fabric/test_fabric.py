"""End-to-end fabric tests: parity with the serial executor, tree
fan-out, crash re-sharding, retries and cache integration.

The load-bearing property everywhere: per-cell seeds are spawned by
grid index when the job is built, so records must be ``==``-identical
to the single-process executor for any worker count, arity, shard
boundary, or crash/retry interleaving.
"""

import json
from pathlib import Path

import pytest

from repro import build_manifest, telemetry
from repro.analysis.parallel import (
    _simulated_cell,
    parallel_map,
    sweep_cell_specs,
)
from repro.exceptions import ConfigurationError, RetryExhaustedError
from repro.fabric import (
    FabricConfig,
    FabricCoordinator,
    FabricJob,
    build_job,
    fabric_simulated_sweep,
)
from repro.fabric.worker import children_of, parent_of, route_step, subtree_of
from repro.resilience.retry import RetryPolicy

SWEEP_KW = dict(
    scheme="full",
    N=8,
    bus_counts=[2, 4],
    rates=[0.5, 1.0],
    n_cycles=250,
    seed=11,
    backend="auto",
)


def _sweep_job(**extra) -> FabricJob:
    return FabricJob(kind="sweep", params={**SWEEP_KW, **extra})


@pytest.fixture(scope="module")
def serial_records():
    """The single-process ground truth for SWEEP_KW."""
    specs = sweep_cell_specs(
        SWEEP_KW["scheme"],
        SWEEP_KW["N"],
        bus_counts=SWEEP_KW["bus_counts"],
        rates=SWEEP_KW["rates"],
        n_cycles=SWEEP_KW["n_cycles"],
        seed=SWEEP_KW["seed"],
        backend=SWEEP_KW["backend"],
    )
    return parallel_map(_simulated_cell, specs)


class TestTopology:
    def test_children_heap_numbering(self):
        assert children_of(0, arity=2, n_workers=6) == [1, 2]
        assert children_of(1, arity=2, n_workers=6) == [3, 4]
        assert children_of(2, arity=2, n_workers=6) == [5, 6]
        assert children_of(3, arity=2, n_workers=6) == []

    def test_every_worker_has_one_parent(self):
        for arity in (1, 2, 3, 8):
            for node in range(1, 30):
                parent = parent_of(node, arity)
                assert node in children_of(parent, arity, n_workers=64)

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            parent_of(0, arity=2)

    def test_route_step_walks_toward_target(self):
        # 0 -> 1 -> 3 in a binary tree.
        assert route_step(0, 3, arity=2) == 1
        assert route_step(1, 3, arity=2) == 3
        with pytest.raises(ValueError):
            route_step(2, 3, arity=2)  # 3 is not under 2

    def test_subtree_membership(self):
        assert subtree_of(1, arity=2, n_workers=6) == [1, 3, 4]
        assert subtree_of(2, arity=2, n_workers=6) == [2, 5, 6]
        assert subtree_of(0, arity=2, n_workers=6) == [1, 2, 3, 4, 5, 6]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FabricConfig(n_workers=0)
        with pytest.raises(ConfigurationError):
            FabricConfig(arity=0)
        with pytest.raises(ConfigurationError):
            FabricConfig(heartbeat_interval=0.0)
        with pytest.raises(ConfigurationError):
            FabricConfig(heartbeat_interval=1.0, heartbeat_timeout=1.0)


class TestJobs:
    def test_sweep_plan_matches_serial_enumeration(self, serial_records):
        plan = build_job(_sweep_job())
        assert sorted(plan.cells) == list(range(plan.grid.size))
        # Grid order == the serial executor's record order.
        for position, index in enumerate(sorted(plan.cells)):
            spec = plan.cells[index]
            record = serial_records[position]
            assert (spec["r"], spec["B"], spec["model_name"]) == (
                record["r"],
                record["B"],
                record["model"],
            )

    def test_cells_survive_reevaluation(self):
        # run_cell deep-copies the spec, so evaluating the same cell
        # twice (a retry) yields the identical record.
        plan = build_job(_sweep_job())
        assert plan.run_cell(0) == plan.run_cell(0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fabric job"):
            build_job(FabricJob(kind="nope", params={}))

    def test_unknown_model_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="model factory"):
            build_job(_sweep_job(model_factory="evil.import"))

    def test_wire_round_trip(self):
        job = _sweep_job()
        assert FabricJob.from_wire(job.to_wire()) == job


class TestFabricParity:
    def test_two_workers_bit_identical(self, serial_records):
        records = fabric_simulated_sweep(
            scheme=SWEEP_KW["scheme"],
            n_processors=SWEEP_KW["N"],
            bus_counts=SWEEP_KW["bus_counts"],
            rates=SWEEP_KW["rates"],
            n_cycles=SWEEP_KW["n_cycles"],
            seed=SWEEP_KW["seed"],
            backend=SWEEP_KW["backend"],
            n_workers=2,
        )
        assert records == serial_records

    def test_deep_tree_bit_identical(self, serial_records):
        # Three workers at arity 2: node 3 hangs off node 1, so WORK
        # routing down and RESULT relaying up both cross a hop.
        report = FabricCoordinator(
            _sweep_job(), FabricConfig(n_workers=3, arity=2)
        ).run()
        assert report.records == serial_records
        assert {entry["node"] for entry in report.shard_map} == {1, 2, 3}
        assert sorted(report.worker_timings) == [1, 2, 3]
        assert sum(t["cells"] for t in report.worker_timings.values()) == len(
            serial_records
        )


class TestChaos:
    def test_sigkilled_worker_is_reshard_and_bit_identical(
        self, serial_records, tmp_path
    ):
        # Exactly one worker claims the marker and SIGKILLs itself
        # before its first cell; the coordinator must re-shard only the
        # lost cells and still produce identical records.
        marker = tmp_path / "kill-once"
        marker.touch()
        with telemetry() as registry:
            report = FabricCoordinator(
                _sweep_job(kill_marker=str(marker)),
                FabricConfig(n_workers=2, heartbeat_timeout=15.0),
            ).run()
        assert report.records == serial_records
        assert len(report.worker_deaths) == 1
        assert report.retries >= 1
        retried = [s for s in report.shard_map if s["attempt"] > 1]
        assert retried, "the lost slice must be re-dispatched"

        fabric = build_manifest(registry)["fabric"]
        assert fabric["workers_spawned"] == 2
        assert len(fabric["worker_deaths"]) == 1
        assert any(shard["attempt"] > 1 for shard in fabric["shards"])
        assert fabric["results"] == len(serial_records)

    def test_soft_cell_failure_retries_elsewhere(
        self, serial_records, tmp_path
    ):
        # One cell raises once (whoever claims the marker); the worker
        # survives, reports the error, and the cell retries.
        marker = tmp_path / "poison-once"
        marker.touch()
        report = FabricCoordinator(
            _sweep_job(poison_marker=str(marker)),
            FabricConfig(n_workers=2),
        ).run()
        assert report.records == serial_records
        assert report.worker_deaths == []
        assert report.retries >= 1

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        marker = tmp_path / "poison"
        marker.touch()
        with pytest.raises(RetryExhaustedError):
            FabricCoordinator(
                _sweep_job(poison_marker=str(marker)),
                FabricConfig(
                    n_workers=1,
                    retry_policy=RetryPolicy(
                        max_attempts=1, backoff_seconds=0.0
                    ),
                ),
            ).run()


class TestCacheIntegration:
    def test_second_run_is_served_from_cache_without_workers(
        self, serial_records, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        first = fabric_simulated_sweep(
            scheme=SWEEP_KW["scheme"],
            n_processors=SWEEP_KW["N"],
            bus_counts=SWEEP_KW["bus_counts"],
            rates=SWEEP_KW["rates"],
            n_cycles=SWEEP_KW["n_cycles"],
            seed=SWEEP_KW["seed"],
            backend=SWEEP_KW["backend"],
            n_workers=2,
            cache=cache_dir,
        )
        assert first == serial_records
        coordinator = FabricCoordinator(
            _sweep_job(), FabricConfig(n_workers=2), cache=cache_dir
        )
        report = coordinator.run()
        assert report.records == serial_records
        assert report.cache_hits == len(serial_records)
        assert report.shard_map == []  # nothing left to dispatch
        assert coordinator.pids == {}  # no worker was ever spawned

    def test_fabric_shares_cache_identity_with_parallel_map(
        self, serial_records, tmp_path
    ):
        # Records checkpointed by the in-process executor satisfy the
        # fabric (same ResultCache key function), and vice versa.
        cache_dir = tmp_path / "cache"
        from repro.analysis.parallel import _simulated_cell_params

        specs = sweep_cell_specs(
            SWEEP_KW["scheme"],
            SWEEP_KW["N"],
            bus_counts=SWEEP_KW["bus_counts"],
            rates=SWEEP_KW["rates"],
            n_cycles=SWEEP_KW["n_cycles"],
            seed=SWEEP_KW["seed"],
            backend=SWEEP_KW["backend"],
        )
        parallel_map(
            _simulated_cell,
            specs,
            cache=cache_dir,
            cache_params=_simulated_cell_params,
        )
        report = FabricCoordinator(
            _sweep_job(), FabricConfig(n_workers=2), cache=cache_dir
        ).run()
        assert report.records == serial_records
        assert report.cache_hits == len(serial_records)


class TestValidationExperiment:
    def test_fabric_records_match_in_process(self):
        from repro.experiments import validation

        baseline = validation.run(n_cycles=150, seed=5)
        fabricated = validation.run(n_cycles=150, seed=5, fabric_workers=2)
        assert fabricated.records == baseline.records


class TestRecordsAreJsonSafe:
    def test_fabric_records_survive_json(self, serial_records):
        # The wire is JSON; serial records must round-trip exactly for
        # the == parity contract to be meaningful.
        assert json.loads(json.dumps(serial_records)) == serial_records
