"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.runner import main


class TestRunnerCli:
    def test_single_experiment_quiet(self, capsys):
        code = main(["table1", "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "table1" in captured.out
        assert "OK" in captured.out

    def test_multiple_experiments(self, capsys):
        code = main(["table1", "figures", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "table1" in out and "figures" in out

    def test_verbose_prints_tables(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "B(N + M)" in out  # the symbolic table

    def test_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["tableX", "--quiet"])
