"""Deterministic, seeded fault injection for hardening the stack.

A :class:`FaultPlan` is a declarative list of :class:`FaultRule`\\ s —
"on the 2nd dispatch to site ``fabric.dispatch``, kill the worker";
"corrupt every 5th frame written at ``fabric.wire.encode``"; "delay
``service.engine`` calls by 20ms with probability 0.1".  Whether a rule
fires is a *pure function* of ``(site, plan seed, nth call at that
site)`` — the same sha256-hash construction as
:class:`repro.resilience.RetryPolicy` jitter — so a chaos run replays
byte-identically: same injection sequence, same breaker transitions,
same final results.

Injection sites are pre-registered call-outs in production code::

    chaos.inject("fabric.dispatch", worker=node)   # sync paths
    await chaos.ainject("service.engine")          # asyncio paths

With no plan installed both are a module-global ``None`` check and an
immediate return — zero overhead, guarded by the service benchmark.
With a plan installed, ``delay`` rules sleep and ``error`` rules raise
:class:`~repro.exceptions.ChaosError` inside ``inject`` itself;
site-interpreted kinds (``corrupt_frame``, ``kill_worker``,
``stale_surface``) are returned as the kind string for the site to
enact, because only the site knows how (flip bytes in the encoded
frame, SIGKILL the child process, skip the materialization).

Plans load from JSON files (``repro-serve --chaos-plan FILE``,
``repro-fabric --chaos-plan FILE``)::

    {"seed": 42,
     "rules": [
       {"site": "fabric.dispatch", "kind": "kill_worker", "calls": [2]},
       {"site": "service.engine", "kind": "delay", "delay_ms": 20,
        "every": 3},
       {"site": "fabric.wire.encode", "kind": "corrupt_frame",
        "probability": 0.2}]}

Every firing is counted as ``chaos.injected{site=, kind=}`` and logged
as a seq-numbered, timestamp-free ``chaos.injection`` event, so the
injection sequence itself is part of the diffable run manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.exceptions import ChaosError, ConfigurationError
from repro.obs.metrics import get_registry

__all__ = [
    "FaultRule",
    "FaultPlan",
    "install_plan",
    "uninstall_plan",
    "active_plan",
    "chaos_plan",
    "inject",
    "ainject",
    "KINDS",
    "SITES",
]

#: Injection kinds understood by the harness.  ``delay`` and ``error``
#: are enacted inside :func:`inject`; the rest are returned to the site.
KINDS = frozenset(
    {"delay", "error", "corrupt_frame", "kill_worker", "stale_surface"}
)

#: Registered injection sites (documentation + plan validation).
SITES = frozenset(
    {
        "service.engine",
        "service.http",
        "service.batch",
        "fabric.dispatch",
        "fabric.wire.encode",
        "surfaces.refresh",
    }
)


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule.

    Exactly one trigger must be given:

    * ``calls`` — explicit 1-based call indices at the site;
    * ``every`` — fire on every ``every``-th call;
    * ``probability`` — fire when the hash of ``(seed, site, n)`` lands
      below the threshold (deterministic per plan seed).

    ``max_fires`` optionally caps the total number of firings.
    """

    site: str
    kind: str
    calls: tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    delay_ms: float = 0.0
    message: str = ""
    max_fires: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown chaos site {self.site!r}; registered sites: "
                f"{sorted(SITES)}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; known kinds: "
                f"{sorted(KINDS)}"
            )
        triggers = sum(
            (bool(self.calls), self.every > 0, self.probability > 0)
        )
        if triggers != 1:
            raise ConfigurationError(
                f"rule at site {self.site!r} must set exactly one of "
                f"calls/every/probability, got {triggers}"
            )
        if any(n < 1 for n in self.calls):
            raise ConfigurationError(
                f"calls must be 1-based positive indices, got {self.calls}"
            )
        if self.every < 0:
            raise ConfigurationError(
                f"every must be >= 0, got {self.every}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.kind == "delay" and self.delay_ms <= 0:
            raise ConfigurationError(
                f"delay rule at {self.site!r} needs delay_ms > 0, got "
                f"{self.delay_ms}"
            )
        if self.delay_ms < 0:
            raise ConfigurationError(
                f"delay_ms must be >= 0, got {self.delay_ms}"
            )
        if self.max_fires < 0:
            raise ConfigurationError(
                f"max_fires must be >= 0, got {self.max_fires}"
            )

    def fires(self, seed: int, call_index: int) -> bool:
        """Pure decision: does this rule fire on ``call_index`` (1-based)?"""
        if self.calls:
            return call_index in self.calls
        if self.every:
            return call_index % self.every == 0
        digest = hashlib.sha256(
            f"{seed}:{self.site}:{call_index}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return unit < self.probability


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, validated set of :class:`FaultRule`\\ s."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigurationError(
                f"plan seed must be an integer, got {self.seed!r}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from parsed JSON, with typed validation errors."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"chaos plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise ConfigurationError(
                f"unknown chaos plan keys: {sorted(unknown)}"
            )
        raw_rules = data.get("rules", [])
        if not isinstance(raw_rules, list):
            raise ConfigurationError("chaos plan 'rules' must be a list")
        rule_fields = {f.name for f in dataclasses.fields(FaultRule)}
        rules = []
        for i, raw in enumerate(raw_rules):
            if not isinstance(raw, dict):
                raise ConfigurationError(
                    f"chaos rule #{i} must be an object"
                )
            extra = set(raw) - rule_fields
            if extra:
                raise ConfigurationError(
                    f"chaos rule #{i} has unknown keys: {sorted(extra)}"
                )
            kwargs = dict(raw)
            if "calls" in kwargs:
                kwargs["calls"] = tuple(kwargs["calls"])
            rules.append(FaultRule(**kwargs))
        return cls(seed=data.get("seed", 0), rules=tuple(rules))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load and validate a JSON plan file."""
        text = Path(path).read_text(encoding="utf-8")
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"chaos plan {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


class _ChaosController:
    """Active plan plus per-site call counters (thread-safe)."""

    __slots__ = ("plan", "_lock", "_counts", "_fired", "_log")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._log: list[dict[str, object]] = []

    def visit(self, site: str) -> tuple[FaultRule | None, int]:
        """Count one call at ``site``; return the firing rule, if any.

        At most one rule fires per call: the first matching rule in plan
        order wins, keeping the injection sequence a pure function of
        the plan.
        """
        with self._lock:
            n = self._counts.get(site, 0) + 1
            self._counts[site] = n
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                if rule.max_fires and self._fired.get(index, 0) >= rule.max_fires:
                    continue
                if rule.fires(self.plan.seed, n):
                    self._fired[index] = self._fired.get(index, 0) + 1
                    entry = {"site": site, "kind": rule.kind, "call": n}
                    self._log.append(entry)
                    return rule, n
            return None, n

    def injections(self) -> list[dict[str, object]]:
        """Ordered record of every firing (for the manifest)."""
        with self._lock:
            return [dict(entry) for entry in self._log]


_active: _ChaosController | None = None


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide (replacing any previous plan)."""
    global _active
    _active = _ChaosController(plan)


def uninstall_plan() -> None:
    """Deactivate chaos injection (restores the zero-overhead path)."""
    global _active
    _active = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or ``None``."""
    controller = _active
    return controller.plan if controller is not None else None


def active_injections() -> list[dict[str, object]]:
    """Ordered injections of the active plan (empty when disabled)."""
    controller = _active
    return controller.injections() if controller is not None else []


@contextmanager
def chaos_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for a ``with`` block, restoring the prior state."""
    global _active
    previous = _active
    install_plan(plan)
    try:
        yield plan
    finally:
        _active = previous


def _enact(
    rule: FaultRule, site: str, call_index: int, slept: bool
) -> str | None:
    registry = get_registry()
    registry.increment("chaos.injected", site=site, kind=rule.kind)
    # The event field is ``fault`` (not ``kind``): ``kind`` is the event
    # *name* slot in the registry's record_event signature.
    registry.record_event(
        "chaos.injection", site=site, fault=rule.kind, call=call_index
    )
    if rule.kind == "delay":
        if not slept:
            time.sleep(rule.delay_ms / 1000.0)
        return "delay"
    if rule.kind == "error":
        raise ChaosError(
            rule.message
            or f"chaos-injected error at {site} (call #{call_index})"
        )
    return rule.kind


def inject(site: str) -> str | None:
    """Synchronous injection call-out at ``site``.

    Returns ``None`` (no rule fired), ``"delay"`` (already slept), or a
    site-interpreted kind string; raises
    :class:`~repro.exceptions.ChaosError` for ``error`` rules.  With no
    plan installed this is one global load and a compare.
    """
    controller = _active
    if controller is None:
        return None
    rule, n = controller.visit(site)
    if rule is None:
        return None
    return _enact(rule, site, n, slept=False)


async def ainject(site: str) -> str | None:
    """Asyncio variant of :func:`inject`: delays use ``asyncio.sleep``
    so an injected stall never blocks the event loop."""
    controller = _active
    if controller is None:
        return None
    rule, n = controller.visit(site)
    if rule is None:
        return None
    if rule.kind == "delay":
        import asyncio

        await asyncio.sleep(rule.delay_ms / 1000.0)
        return _enact(rule, site, n, slept=True)
    return _enact(rule, site, n, slept=False)
