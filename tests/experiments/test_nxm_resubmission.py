"""Tests for the E11 (N x M) and E12 (resubmission) experiments."""

import pytest

from repro.experiments import nxm, resubmission
from repro.experiments.nxm import nxm_model


class TestNxmExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return nxm.run()

    def test_consistency_checks_pass(self, result):
        assert result.n_compared >= 12
        assert result.all_within_tolerance()

    def test_covers_three_memory_sizes(self, result):
        assert {r["M"] for r in result.records} == {8, 16, 32}

    def test_more_memory_helps(self, result):
        # At fixed B=8, r=1.0, full connection: more modules -> fewer
        # conflicts -> higher bandwidth.
        by_m = {
            r["M"]: r["bandwidth"]
            for r in result.records
            if r["scheme"] == "full" and r["B"] == 8 and r["r"] == 1.0
        }
        assert by_m[8] < by_m[16] < by_m[32]

    def test_scheme_ordering_holds_for_nxm(self, result):
        for m in (16, 32):
            rows = {
                r["scheme"]: r["bandwidth"]
                for r in result.records
                if r["M"] == m and r["B"] == 8 and r["r"] == 1.0
            }
            assert rows["full"] >= rows["partial"] - 1e-9
            assert rows["partial"] >= rows["single"] - 1e-9

    def test_nxm_model_shapes(self):
        model = nxm_model(2)
        assert model.n_processors == 16
        assert model.n_memories == 8
        model.validate()


class TestResubmissionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return resubmission.run(n_cycles=5_000, seed=1)

    def test_analytic_tracks_simulation(self, result):
        for row in result.records:
            assert row["resub MBW analytic"] == pytest.approx(
                row["resub MBW simulated"], rel=0.05
            )
            assert row["alpha analytic"] == pytest.approx(
                row["alpha simulated"], abs=0.05
            )

    def test_resubmission_never_below_drop(self, result):
        for row in result.records:
            assert row["resub MBW analytic"] >= row["drop MBW (paper)"] - 1e-9

    def test_wait_grows_with_rate(self, result):
        waits = [row["wait simulated"] for row in result.records]
        assert waits == sorted(waits)

    def test_rendered(self, result):
        assert "Drop model vs resubmission" in result.rendered
