"""Stage one: per-module N-user/1-server memory request arbiters.

Each shared memory module owns an arbiter that, every cycle, selects with
equal probability one of the processors holding an outstanding request for
it (Section II-A).  The identity of the winner does not change the memory
bandwidth — one request per requested module survives either way — but it
determines *which processor's* request succeeds, which the fairness
metrics and trace records consume.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["MemoryArbiter", "resolve_memory_contention"]


class MemoryArbiter:
    """Random N-user, 1-server arbiter for a single memory module."""

    def __init__(self, module: int):
        if module < 0:
            raise SimulationError(f"module index must be non-negative: {module}")
        self._module = int(module)

    @property
    def module(self) -> int:
        """Index of the memory module this arbiter serves."""
        return self._module

    def select(
        self, requesters: Sequence[int], rng: np.random.Generator
    ) -> int | None:
        """Pick the winning processor, or ``None`` when nobody requests.

        Every requester wins with probability ``1 / len(requesters)``.
        """
        if len(requesters) == 0:
            return None
        if len(requesters) == 1:
            return int(requesters[0])
        return int(requesters[rng.integers(len(requesters))])

    def __repr__(self) -> str:
        return f"MemoryArbiter(module={self._module})"


def resolve_memory_contention(
    choices: Iterable[tuple[int, int]],
    n_memories: int,
    rng: np.random.Generator,
) -> dict[int, int]:
    """Run stage one for a whole cycle.

    Parameters
    ----------
    choices:
        ``(processor, module)`` pairs — every request issued this cycle.
    n_memories:
        Number of modules (arbiters).
    rng:
        Random source shared by all arbiters.

    Returns
    -------
    dict
        ``{module: winning_processor}`` for every requested module.
    """
    per_module: dict[int, list[int]] = {}
    for processor, module in choices:
        if not 0 <= module < n_memories:
            raise SimulationError(
                f"request for module {module} outside [0, {n_memories})"
            )
        per_module.setdefault(module, []).append(processor)
    winners: dict[int, int] = {}
    for module, requesters in per_module.items():
        winner = MemoryArbiter(module).select(requesters, rng)
        if winner is not None:
            winners[module] = winner
    return winners
