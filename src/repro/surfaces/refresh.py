"""Background surface refresher: hot signatures in, atomic swaps out.

:class:`SurfaceRefresher` is an asyncio task living next to the serving
loop.  Each cycle it drains the store's hot list
(:meth:`~repro.surfaces.store.SurfaceStore.take_hot`) and materializes
each signature in the default executor — materialization is seconds of
NumPy work, far too heavy for the event loop, while the final publish is
an O(surface bytes) copy plus one seqlock flip, so serving lookups never
block on a refresh.

Failure is graceful by contract: a materialization that exhausts its
:class:`~repro.resilience.retry.RetryPolicy` increments
``surfaces.refresh{status="error"}``, records an event, and *drops* the
signature's hot entry — the serving path simply keeps answering from
the engine's existing tiers (and re-detects the signature if traffic
persists).  A refresher crash can therefore never take serving down
with it.

A :class:`~repro.resilience.breaker.CircuitBreaker` wraps the
materialization tier: repeated failures open it and subsequent cycles
*skip* materialization entirely until the deterministic probe delay
elapses — already-published surfaces keep serving (stale but within the
interpolation bound) instead of the refresher hammering a broken
dependency.  The ``surfaces.refresh`` chaos site's ``stale_surface``
kind forces the same skip for one cycle.
"""

from __future__ import annotations

import asyncio

from repro.obs.metrics import get_registry
from repro.resilience import chaos
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.retry import RetryPolicy, retry_call
from repro.surfaces.store import SurfaceStore

__all__ = ["SurfaceRefresher"]


class SurfaceRefresher:
    """Detect hot signatures and (re)materialize their surfaces.

    Parameters
    ----------
    store:
        The :class:`~repro.surfaces.store.SurfaceStore` to watch and
        publish through.
    interval:
        Seconds between hot-list scans.
    retry_policy:
        Applied around each materialization; the default retries twice
        with a short deterministic backoff.
    breaker:
        The materialization circuit breaker; defaults to opening after
        two failed cycles in a four-cycle window with the standard
        deterministic probe schedule.
    """

    def __init__(
        self,
        store: SurfaceStore,
        interval: float = 2.0,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.store = store
        self.interval = float(interval)
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=2, backoff_seconds=0.05
        )
        self.breaker = breaker or CircuitBreaker(
            "surfaces.refresh",
            policy=BreakerPolicy(failure_threshold=2, window_size=4),
        )
        self._task: asyncio.Task | None = None
        self._wake = asyncio.Event()
        self.cycles = 0
        self.skipped_stale = 0

    def start(self) -> None:
        """Spawn the background task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="surface-refresher"
            )

    async def stop(self) -> None:
        """Cancel the background task and wait for it to unwind."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    def poke(self) -> None:
        """Ask for an immediate scan instead of waiting out the interval."""
        self._wake.set()

    async def _run(self) -> None:
        while True:
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=self.interval
                )
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            await self.refresh_once()

    async def refresh_once(self) -> int:
        """One scan: materialize every hot signature off-loop.

        Returns the number of surfaces successfully published.  Never
        raises — each failure is counted, logged and skipped so the
        serving loop's tiers keep answering.
        """
        registry = get_registry()
        loop = asyncio.get_running_loop()
        published = 0
        stalled = chaos.inject("surfaces.refresh") == "stale_surface"
        for signature, rates in self.store.take_hot():
            if stalled or not self.breaker.allow():
                # Serve stale: the hot entry is dropped, published
                # surfaces keep answering, and traffic re-detects the
                # signature once the stall/breaker clears.
                self.skipped_stale += 1
                registry.increment("surfaces.refresh", status="stale")
                registry.record_event(
                    "surfaces.refresh_stale",
                    signature=signature.short(),
                    reason="chaos" if stalled else "breaker-open",
                )
                continue
            try:
                version = await loop.run_in_executor(
                    None,
                    lambda sig=signature, extra=rates: retry_call(
                        self.store.materialize,
                        sig,
                        extra,
                        policy=self.retry_policy,
                        token=f"surface-refresh:{sig.short()}",
                    ),
                )
            except Exception as exc:
                self.breaker.record_failure()
                registry.increment("surfaces.refresh", status="error")
                registry.record_event(
                    "surfaces.refresh_failed",
                    signature=signature.short(),
                    error=repr(exc),
                )
                continue
            self.breaker.record_success()
            published += 1
            registry.increment("surfaces.refresh", status="ok")
            registry.record_event(
                "surfaces.refreshed",
                signature=signature.short(),
                version=version,
                extra_rates=len(rates),
            )
        self.cycles += 1
        return published
