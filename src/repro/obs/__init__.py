"""Telemetry subsystem: metrics, spans, exporters and run manifests.

The observability layer for the whole stack.  Hot paths (the pmf cache,
both simulation backends, the batched analytic engine, the sweep
drivers, the parallel executor) report into a process-wide
:class:`~repro.obs.metrics.MetricsRegistry`; :func:`~repro.obs.spans.span`
traces nested timed scopes; the exporters turn a registry into a
JSON-lines event log, a Prometheus text dump, or a diffable per-run
``manifest.json``.

Telemetry is disabled by default and *zero-overhead when disabled*: the
installed registry is a shared no-op and :func:`span` returns a shared
no-op context manager.  Enable it per run::

    from repro.obs import telemetry, span, write_manifest

    with telemetry() as registry:
        with span("my.run", scheme="partial"):
            ...  # any repro work: sweeps, simulations, experiments
        write_manifest(registry, "out/manifest.json", run={"name": "demo"})

or process-wide with :func:`enable_telemetry` /
:func:`disable_telemetry` (the experiment CLI's ``--telemetry PATH``
does exactly this around each experiment).
"""

from repro.obs.exporters import (
    events_jsonl,
    prometheus_text,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.manifest import (
    build_manifest,
    skipped_cell_counts,
    write_manifest,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    HistogramSummary,
    MetricsRegistry,
    NullRegistry,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    set_registry,
    telemetry,
    telemetry_enabled,
)
from repro.obs.spans import current_span_path, span

__all__ = [
    # registry
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "HistogramSummary",
    "get_registry",
    "set_registry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry",
    # spans
    "span",
    "current_span_path",
    # exporters
    "events_jsonl",
    "write_events_jsonl",
    "prometheus_text",
    "write_prometheus",
    # manifests
    "build_manifest",
    "write_manifest",
    "skipped_cell_counts",
]
