"""E7 benchmark: regenerate and verify the Figure 1-4 topologies."""

from repro.experiments import figures


def test_figures_topology(benchmark, reproduces):
    result = benchmark(figures.run)
    reproduces(result)
    assert "fig3" in result.rendered or "KClass" in result.rendered
