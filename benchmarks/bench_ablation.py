"""E10 benchmark: design-principle ablations."""

from repro.experiments import ablation


def test_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablation.run(n_cycles=5_000, seed=17),
        rounds=1,
        iterations=1,
    )
    placement = {
        r["placement"]: r["bandwidth"]
        for r in result.records
        if r.get("study") == "placement"
    }
    assert placement["hot_high"] > placement["hot_low"]
