"""E9 — analytic vs Monte-Carlo agreement for every connection scheme.

The paper's closed forms make one statistical shortcut: the number of
requested modules is treated as a Binomial(M, X) count — i.e. module
request events are assumed *independent* (eq. 3).  With processors
issuing at most one request each, the true events are negatively
correlated, so the formulas are approximations of the processor-driven
system (exact only when bus contention vanishes, e.g. ``B >= M``).

This experiment therefore validates in two modes:

* ``independence`` — a synthetic workload in which each module is
  requested independently with probability X (the identity fraction
  matrix at rate X).  Here the formulas are *exact*, so simulation must
  agree within its confidence interval: this validates the arbitration
  substrate and eqs. (4), (6), (9), (12) end to end.
* ``processor`` — the paper's actual processor-driven workload.  The
  measured gap *is* the binomial-independence approximation error, which
  this experiment quantifies (about 1-2% at the paper's sizes, shrinking
  to zero as B approaches M).

Each (config, mode) cell simulates under its own
:class:`~numpy.random.SeedSequence` child spawned by cell index from the
experiment seed, so results are bit-identical whether cells run serially
or across ``n_workers`` processes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.parallel import parallel_map, spawn_seeds
from repro.analysis.sweep import paper_model_pair
from repro.analysis.tables import render_table
from repro.core.request_models import MatrixRequestModel
from repro.experiments.base import ExperimentResult
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology.factory import build_network

__all__ = ["run", "independence_workload", "validation_cells"]

_CONFIGS = (
    ("full", 8, 4, {}),
    ("full", 16, 8, {}),
    ("single", 16, 4, {}),
    ("partial", 16, 4, {"n_groups": 2}),
    ("kclass", 16, 4, {}),
    ("crossbar", 8, 8, {}),
)

_MODES = ("independence", "processor")


def independence_workload(
    n_memories: int, request_probability: float
) -> MatrixRequestModel:
    """A workload whose modules are requested independently w.p. ``X``.

    Processor ``j`` requests only module ``j`` and does so with
    probability ``X`` per cycle (identity fraction matrix, rate = X) —
    the exact stochastic regime assumed by eq. (3).
    """
    return MatrixRequestModel(
        np.eye(n_memories), rate=request_probability
    )


def _validation_cell(spec: dict) -> dict[str, object]:
    """Worker: simulate one (config, mode) cell (module-level, picklable)."""
    scheme, n, b, kwargs = spec["config"]
    network = build_network(scheme, n, n, b, **kwargs)
    hier = paper_model_pair(n, 1.0)["hier"]
    analytic = analytic_bandwidth(network, hier)
    if spec["mode"] == "independence":
        model = independence_workload(n, hier.symmetric_module_probability())
    else:
        model = hier
    simulator = MultiprocessorSimulator(
        network, model, seed=spec["seed"], backend=spec["backend"]
    )
    result = simulator.run(spec["n_cycles"])
    record: dict[str, object] = {
        "scheme": scheme,
        "N": n,
        "B": b,
        "mode": spec["mode"],
        "analytic": round(analytic, 4),
        "simulated": round(result.bandwidth, 4),
        "ci95": round(result.bandwidth_ci95, 4),
    }
    if spec["mode"] == "independence":
        record["agrees"] = result.agrees_with(analytic, slack=0.01)
    else:
        gap = result.bandwidth - analytic
        record["approx_error"] = round(gap, 4)
        record["rel_error"] = round(gap / analytic, 4)
    return record


def validation_cells(
    n_cycles: int = 40_000, seed: int = 2024, backend: str = "auto"
) -> list[dict]:
    """The per-cell work specs of E9, seeds attached, config-outer order.

    A pure function of its arguments (per-cell seeds are spawned by
    cell index), so any executor — the serial loop, the fork pool, or
    the distributed fabric — computes bit-identical records from equal
    specs.
    """
    cells = [
        {"config": config, "mode": mode, "n_cycles": n_cycles,
         "backend": backend}
        for config in _CONFIGS
        for mode in _MODES
    ]
    for cell, cell_seed in zip(cells, spawn_seeds(seed, len(cells))):
        cell["seed"] = cell_seed
    return cells


def run(
    n_cycles: int = 40_000,
    seed: int = 2024,
    n_workers: int | None = None,
    backend: str = "auto",
    fabric_workers: int | None = None,
) -> ExperimentResult:
    """Run both validation modes over representative configurations.

    ``fabric_workers`` dispatches the cells across that many fabric
    worker *processes* (tree fan-out, heartbeats, crash re-sharding —
    see :mod:`repro.fabric`) instead of the in-process executor;
    records are bit-identical either way.
    """
    if fabric_workers is not None and fabric_workers > 0:
        from repro.fabric import FabricConfig, FabricCoordinator, FabricJob

        report = FabricCoordinator(
            FabricJob(
                kind="validation",
                params={
                    "n_cycles": n_cycles, "seed": seed, "backend": backend,
                },
            ),
            FabricConfig(n_workers=fabric_workers),
        ).run()
        records = report.records
    else:
        cells = validation_cells(
            n_cycles=n_cycles, seed=seed, backend=backend
        )
        records = parallel_map(_validation_cell, cells, n_workers=n_workers)

    rendered = render_table(
        records,
        title=(
            "Analytic vs Monte-Carlo bandwidth (hier model, r = 1.0); "
            "'independence' mode must agree, 'processor' mode shows the "
            "binomial approximation error"
        ),
    )
    return ExperimentResult(
        experiment_id="validation",
        title="E9: simulation validation of eqs. (4), (6), (9), (12)",
        records=records,
        rendered=rendered,
        comparisons=[],
    )
