"""ResultCache batched checkpointing: buffer, flush triggers, crash
consistency of the published envelopes."""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.parallel import (
    ResultCache,
    _simulated_cell,
    _simulated_cell_params,
    parallel_map,
    sweep_cell_specs,
)
from repro.exceptions import ConfigurationError
from repro.obs import telemetry


def _entries_on_disk(cache: ResultCache) -> int:
    return len(list(cache.directory.glob("*.json")))


class TestValidation:
    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="flush_every"):
            ResultCache(tmp_path, flush_every=0)

    def test_flush_seconds_must_be_non_negative(self, tmp_path):
        with pytest.raises(ConfigurationError, match="flush_seconds"):
            ResultCache(tmp_path, flush_seconds=-1.0)


class TestUnbatchedDefault:
    def test_put_writes_through_immediately(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", {"v": 1})
        assert cache.pending == 0
        assert _entries_on_disk(cache) == 1


class TestBuffering:
    def test_put_buffers_until_flush_every(self, tmp_path):
        cache = ResultCache(tmp_path, flush_every=3)
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        assert cache.pending == 2
        assert _entries_on_disk(cache) == 0
        cache.put("k3", {"v": 3})  # K-th put triggers the flush
        assert cache.pending == 0
        assert _entries_on_disk(cache) == 3

    def test_reads_see_buffered_entries(self, tmp_path):
        cache = ResultCache(tmp_path, flush_every=10)
        cache.put("k1", {"v": 1})
        assert "k1" in cache
        assert cache.get("k1") == {"v": 1}
        assert _entries_on_disk(cache) == 0

    def test_timed_flush_fires_on_the_next_put(self, tmp_path):
        cache = ResultCache(tmp_path, flush_every=100, flush_seconds=0.05)
        cache.put("k1", {"v": 1})
        assert cache.pending == 1
        time.sleep(0.08)
        cache.put("k2", {"v": 2})  # oldest pending entry is now too old
        assert cache.pending == 0
        assert _entries_on_disk(cache) == 2

    def test_explicit_flush_drains_and_counts(self, tmp_path):
        cache = ResultCache(tmp_path, flush_every=100)
        cache.put("k1", {"v": 1})
        cache.put("k2", {"v": 2})
        with telemetry() as registry:
            assert cache.flush() == 2
            assert cache.flush() == 0  # idempotent when empty
        assert registry.counter_total("parallel.disk_cache.flushes") == 1
        assert (
            registry.counter_total("parallel.disk_cache.flushed_entries") == 2
        )
        assert cache.pending == 0
        assert _entries_on_disk(cache) == 2


class TestCrashConsistency:
    def test_flushed_entries_use_the_checksummed_envelope(self, tmp_path):
        batched = ResultCache(tmp_path, flush_every=4)
        for i in range(4):
            batched.put(f"k{i}", {"v": i})
        # A fresh, unbatched instance must verify and read every entry.
        fresh = ResultCache(tmp_path)
        for i in range(4):
            assert fresh.get(f"k{i}") == {"v": i}
        raw = json.loads((tmp_path / "k0.json").read_text())
        assert raw[ResultCache._FORMAT_KEY] == ResultCache._FORMAT
        assert raw["sha256"] == ResultCache.value_digest({"v": 0})

    def test_unflushed_entries_are_the_only_loss(self, tmp_path):
        # Simulate a crash by dropping the instance without flush():
        # published entries survive, the buffered tail is simply absent.
        cache = ResultCache(tmp_path, flush_every=3)
        for i in range(5):  # one flush at 3, two left buffered
            cache.put(f"k{i}", {"v": i})
        del cache
        survivor = ResultCache(tmp_path)
        for i in range(3):
            assert survivor.get(f"k{i}") == {"v": i}
        assert survivor.get("k3") is None
        assert survivor.get("k4") is None


class TestParallelMapIntegration:
    def test_sweep_flushes_at_the_barrier(self, tmp_path):
        specs = sweep_cell_specs(
            "full", 8, bus_counts=[2, 4], rates=[0.5, 1.0], n_cycles=100,
            seed=3,
        )
        cache = ResultCache(tmp_path, flush_every=1000)
        records = parallel_map(
            _simulated_cell, specs, cache=cache,
            cache_params=_simulated_cell_params,
        )
        # parallel_map flushes on the way out even though flush_every
        # was never reached, so a second run is served from disk.
        assert cache.pending == 0
        assert _entries_on_disk(cache) == len(records)

        rerun_specs = sweep_cell_specs(
            "full", 8, bus_counts=[2, 4], rates=[0.5, 1.0], n_cycles=100,
            seed=3,
        )
        with telemetry() as registry:
            rerun = parallel_map(
                _simulated_cell,
                rerun_specs,
                cache=ResultCache(tmp_path),
                cache_params=_simulated_cell_params,
            )
        assert rerun == records
        assert registry.counter_total("parallel.disk_cache.hits") == len(
            records
        )
