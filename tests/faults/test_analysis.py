"""Tests for degraded-mode bandwidth and fault-tolerance verification."""

import pytest

from repro.analysis.evaluate import analytic_bandwidth
from repro.core.request_models import UniformRequestModel
from repro.exceptions import FaultError
from repro.faults.analysis import (
    analytic_degraded_bandwidth,
    degradation_curve,
    simulated_degraded_bandwidth,
    verify_fault_tolerance_degree,
)
from repro.topology import (
    CrossbarNetwork,
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
)

MODEL8 = UniformRequestModel(8, 8)


class TestVerifyFaultToleranceDegree:
    def test_full(self):
        assert verify_fault_tolerance_degree(FullBusMemoryNetwork(8, 8, 4)) == 3

    def test_single(self):
        assert verify_fault_tolerance_degree(SingleBusMemoryNetwork(8, 8, 4)) == 0

    def test_partial(self):
        assert verify_fault_tolerance_degree(PartialBusNetwork(8, 8, 4, 2)) == 1

    def test_kclass(self):
        net = KClassPartialBusNetwork(8, 8, 4, class_sizes=[4, 4])
        assert verify_fault_tolerance_degree(net) == 2

    def test_fig3(self):
        net = KClassPartialBusNetwork(3, 6, 4, class_sizes=[2, 2, 2])
        assert verify_fault_tolerance_degree(net) == 1

    def test_rejects_huge_networks(self):
        with pytest.raises(FaultError, match="intractable"):
            verify_fault_tolerance_degree(FullBusMemoryNetwork(32, 32, 21))


class TestAnalyticDegraded:
    def test_no_failures_equals_healthy(self):
        for network in (
            FullBusMemoryNetwork(8, 8, 4),
            SingleBusMemoryNetwork(8, 8, 4),
            PartialBusNetwork(8, 8, 4, 2),
        ):
            assert analytic_degraded_bandwidth(
                network, MODEL8, set()
            ) == pytest.approx(analytic_bandwidth(network, MODEL8))

    def test_full_failure_shrinks_bus_pool(self):
        net = FullBusMemoryNetwork(8, 8, 4)
        degraded = analytic_degraded_bandwidth(net, MODEL8, {0, 2})
        reference = analytic_bandwidth(FullBusMemoryNetwork(8, 8, 2), MODEL8)
        assert degraded == pytest.approx(reference)

    def test_full_placement_irrelevant(self):
        net = FullBusMemoryNetwork(8, 8, 4)
        assert analytic_degraded_bandwidth(net, MODEL8, {0}) == pytest.approx(
            analytic_degraded_bandwidth(net, MODEL8, {3})
        )

    def test_single_loses_bus_terms(self):
        net = SingleBusMemoryNetwork(8, 8, 4)
        healthy = analytic_bandwidth(net, MODEL8)
        degraded = analytic_degraded_bandwidth(net, MODEL8, {1})
        assert degraded == pytest.approx(healthy * 3 / 4)

    def test_partial_dead_group(self):
        net = PartialBusNetwork(8, 8, 4, 2)
        degraded = analytic_degraded_bandwidth(net, MODEL8, {0, 1})
        # Group 1 survives intact: bandwidth of one (M/2, B/2) subnetwork.
        from repro.core.bandwidth import bandwidth_full

        x = MODEL8.symmetric_module_probability()
        assert degraded == pytest.approx(bandwidth_full(4, 2, x))

    def test_rejects_failing_everything(self):
        with pytest.raises(FaultError, match="survive"):
            analytic_degraded_bandwidth(
                FullBusMemoryNetwork(8, 8, 2), MODEL8, {0, 1}
            )

    def test_rejects_unknown_bus(self):
        with pytest.raises(FaultError, match="out of range"):
            analytic_degraded_bandwidth(
                FullBusMemoryNetwork(8, 8, 2), MODEL8, {7}
            )

    def test_rejects_kclass(self):
        net = KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2])
        with pytest.raises(FaultError, match="no degraded closed form"):
            analytic_degraded_bandwidth(net, MODEL8, {0})

    def test_rejects_crossbar(self):
        with pytest.raises(FaultError, match="crosspoint"):
            analytic_degraded_bandwidth(CrossbarNetwork(8, 8), MODEL8, {0})


class TestSimulatedDegraded:
    def test_matches_analytic_for_full(self):
        net = FullBusMemoryNetwork(8, 8, 4)
        analytic = analytic_degraded_bandwidth(net, MODEL8, {0})
        simulated = simulated_degraded_bandwidth(
            net, MODEL8, {0}, n_cycles=20_000, seed=0
        )
        # Processor-driven workload: simulation may exceed the binomial
        # approximation slightly, never fall materially below.
        assert simulated == pytest.approx(analytic, abs=0.08)

    def test_kclass_degraded_simulation_runs(self):
        net = KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2])
        value = simulated_degraded_bandwidth(
            net, MODEL8, {3}, n_cycles=2_000, seed=0
        )
        assert 0.0 < value <= 3.0


class TestDegradationCurve:
    def test_monotone_decrease_full(self):
        curve = degradation_curve(
            FullBusMemoryNetwork(8, 8, 4), MODEL8, method="analytic"
        )
        means = [point.mean for point in curve]
        assert means == sorted(means, reverse=True)
        assert curve[0].accessible_fraction == 1.0

    def test_single_accessibility_drops(self):
        curve = degradation_curve(
            SingleBusMemoryNetwork(8, 8, 4), MODEL8, method="analytic"
        )
        assert curve[-1].accessible_fraction < 1.0

    def test_worst_leq_best(self):
        curve = degradation_curve(
            PartialBusNetwork(8, 8, 4, 2), MODEL8, method="analytic"
        )
        for point in curve:
            assert point.worst <= point.mean <= point.best + 1e-12

    def test_simulate_method(self):
        curve = degradation_curve(
            KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2]),
            MODEL8,
            max_failures=1,
            method="simulate",
            n_cycles=1_000,
        )
        assert len(curve) == 2
        assert curve[1].mean < curve[0].mean

    def test_rejects_bad_method(self):
        with pytest.raises(FaultError):
            degradation_curve(
                FullBusMemoryNetwork(4, 4, 2), MODEL8, method="guess"
            )

    def test_rejects_bad_max_failures(self):
        with pytest.raises(FaultError):
            degradation_curve(
                FullBusMemoryNetwork(4, 4, 2), MODEL8, max_failures=2
            )
