"""Refresher under chaos and breaker pressure: stale-but-served.

A stalled refresher (injected ``stale_surface`` or an open
materialization breaker) must skip the cycle, keep every published
surface serving, and answer off-grid rates by interpolation within the
2e-3 acceptance bound — never block or crash the serving path.
"""

import asyncio

import pytest

from repro import telemetry
from repro.analysis.batch import scheme_bus_profile
from repro.resilience import chaos
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.resilience.chaos import FaultPlan, FaultRule, chaos_plan
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import build_model, parse_query
from repro.surfaces import (
    LocalArena,
    SurfaceRefresher,
    SurfaceStore,
    signature_of,
)


def _query(**overrides):
    payload = {"scheme": "full", "N": 8, "M": 8, "B": 3, "r": 0.5}
    payload.update(overrides)
    return parse_query(payload)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    chaos.uninstall_plan()


class FakeClock:
    def __init__(self, start=10.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestChaosStall:
    def test_stale_surface_injection_skips_the_cycle(self):
        store = SurfaceStore(arena=LocalArena(), hot_threshold=1)
        refresher = SurfaceRefresher(store, interval=60.0)
        plan = FaultPlan(rules=(
            FaultRule(site="surfaces.refresh", kind="stale_surface",
                      calls=(1,)),
        ))

        async def main():
            with telemetry() as registry:
                store.lookup(_query())  # goes hot
                with chaos_plan(plan):
                    published = await refresher.refresh_once()
                assert published == 0
                assert refresher.skipped_stale == 1
                (event,) = [
                    e for e in registry.events()
                    if e["kind"] == "surfaces.refresh_stale"
                ]
                assert event["reason"] == "chaos"
            # The surface was never published; serving falls through to
            # the normal tiers and traffic re-detects the signature.
            assert store.lookup(_query()) == (None, "unpublished")
            store.lookup(_query())  # hot again
            assert await refresher.refresh_once() == 1
            assert store.lookup(_query())[1] == "exact"

        asyncio.run(main())

    def test_stalled_refresh_still_serves_interpolated_answers(self):
        store = SurfaceStore(arena=LocalArena(), hot_threshold=1)
        refresher = SurfaceRefresher(store, interval=60.0)
        store.materialize(signature_of(_query()))
        plan = FaultPlan(rules=(
            FaultRule(site="surfaces.refresh", kind="stale_surface",
                      every=1),
        ))

        async def main():
            # The off-grid rate goes hot, but every refresh cycle is
            # stalled — the refinement never materializes.
            value, kind = store.lookup(_query(r=0.47))
            with chaos_plan(plan):
                for _ in range(3):
                    await refresher.refresh_once()
            assert refresher.skipped_stale >= 1
            stale_value, stale_kind = store.lookup(_query(r=0.47))
            assert stale_kind == "interpolated"
            assert stale_value == value  # unchanged: stale but served
            truth = scheme_bus_profile(
                "full", 8, 8, [3], build_model(_query(r=0.47))
            ).values[3]
            assert stale_value == pytest.approx(truth, abs=2e-3)

        asyncio.run(main())


class TestBreakerStall:
    def test_breaker_opens_after_repeated_failures_then_recovers(self):
        clock = FakeClock()
        store = SurfaceStore(arena=LocalArena(), hot_threshold=1)
        breaker = CircuitBreaker(
            "surfaces.refresh",
            policy=BreakerPolicy(failure_threshold=2, window_size=4),
            clock=clock,
        )
        refresher = SurfaceRefresher(
            store,
            retry_policy=RetryPolicy(max_attempts=1, backoff_seconds=0.0),
            breaker=breaker,
        )
        real_materialize = store.materialize

        def failing(signature, extra_rates=()):
            raise RuntimeError("arena on fire")

        store.materialize = failing

        async def main():
            with telemetry() as registry:
                for _ in range(2):  # two failed cycles trip the breaker
                    store.lookup(_query())
                    assert await refresher.refresh_once() == 0
                assert not breaker.allow()
                # While open, the cycle skips materialization entirely.
                store.lookup(_query())
                assert await refresher.refresh_once() == 0
                assert refresher.skipped_stale == 1
                (event,) = [
                    e for e in registry.events()
                    if e["kind"] == "surfaces.refresh_stale"
                ]
                assert event["reason"] == "breaker-open"
                # Dependency heals; the probe succeeds and closes it.
                store.materialize = real_materialize
                clock.advance(60.0)
                store.lookup(_query())
                assert await refresher.refresh_once() == 1
                assert breaker.state == "closed"
            assert store.lookup(_query())[1] == "exact"

        asyncio.run(main())
