"""Closed-form bandwidth of partial bus networks with K classes (Sec. III-D).

The paper's proposed architecture divides the ``M`` memory modules into
``K`` classes; class ``C_j`` (sizes ``M_1 + ... + M_K = M``) connects to
buses ``1 .. j + B - K``.  Under the two-step bus-assignment procedure of
Lang et al. [10], bus ``i`` stays idle only when every class it serves has
"few enough" requested modules — eq. (11)::

    Y_i = 1 - prod_{j=a}^{K} sum_{m=0}^{j-a} Q_j(m),      a = i + K - B,

where ``Q_j(m)`` is the binomial probability of exactly ``m`` requested
modules in class ``C_j`` (eq. 10), and the bandwidth is
``MBW_p' = sum_i Y_i`` (eq. 12).

This module also generalizes eq. (10) to *per-class* request probabilities
``X_j`` (classes holding hotter modules), which the paper's two design
principles motivate but do not evaluate — used by the ablation experiment
E10.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.binomial import validate_probability
from repro.core.cache import cached_binomial_pmf
from repro.exceptions import ConfigurationError

__all__ = [
    "class_request_pmfs",
    "bus_busy_probabilities",
    "bandwidth_kclass",
]


def _validate_classes(class_sizes: Sequence[int], n_buses: int) -> list[int]:
    sizes = [int(s) for s in class_sizes]
    if not sizes:
        raise ConfigurationError("need at least one memory class")
    if any(s < 0 for s in sizes):
        raise ConfigurationError(f"class sizes must be non-negative: {sizes}")
    if sum(sizes) < 1:
        raise ConfigurationError("classes must hold at least one module")
    if len(sizes) > n_buses:
        raise ConfigurationError(
            f"K={len(sizes)} classes require K <= B={n_buses} buses"
        )
    if n_buses < 1:
        raise ConfigurationError(f"need at least one bus, got {n_buses}")
    return sizes


def class_request_pmfs(
    class_sizes: Sequence[int],
    request_probability: float | Sequence[float],
) -> list[np.ndarray]:
    """Return ``Q_j`` pmf vectors, one per class (eq. 10).

    ``request_probability`` is either the common per-module probability
    ``X`` or a per-class sequence ``(X_1, ..., X_K)``.  Element ``j`` of
    the result has length ``M_j + 1`` and gives the distribution of the
    number of requested modules within class ``C_{j+1}``.

    Vectors come from the shared :data:`repro.core.cache.pmf_cache` —
    equal-sized classes at the same ``X`` share one (read-only) pmf, as do
    repeated evaluations across bus counts of a sweep.
    """
    sizes = [int(s) for s in class_sizes]
    if np.isscalar(request_probability):
        xs = [validate_probability(float(request_probability), "X")] * len(sizes)
    else:
        xs = [validate_probability(float(x), "X_j") for x in request_probability]
        if len(xs) != len(sizes):
            raise ConfigurationError(
                f"need one X per class: {len(xs)} probabilities "
                f"for {len(sizes)} classes"
            )
    return [cached_binomial_pmf(m_j, x_j) for m_j, x_j in zip(sizes, xs)]


def bus_busy_probabilities(
    class_sizes: Sequence[int],
    n_buses: int,
    request_probability: float | Sequence[float],
) -> np.ndarray:
    """Return ``(Y_1, ..., Y_B)`` — probability each bus carries a transfer.

    Implements eq. (11) with the paper's dummy-class convention: classes
    with subscript ``d <= 0`` are empty (``Q_d(0) = 1``), so the product
    simply skips them.

    Parameters
    ----------
    class_sizes:
        ``(M_1, ..., M_K)`` modules per class; class ``C_j`` connects to
        buses ``1 .. j + B - K``.
    n_buses:
        Total bus count ``B`` (``K <= B`` required).
    request_probability:
        Common ``X`` from eq. (2), or per-class ``X_j`` values.
    """
    sizes = _validate_classes(class_sizes, n_buses)
    n_classes = len(sizes)
    pmfs = class_request_pmfs(sizes, request_probability)
    # Prefix sums of each class pmf: cdf[j][m] = P(requests in C_{j+1} <= m).
    cdfs = [np.cumsum(pmf) for pmf in pmfs]

    ys = np.empty(n_buses)
    for bus in range(1, n_buses + 1):  # paper's 1-based bus index i
        a = bus + n_classes - n_buses  # lowest class connected to this bus
        idle = 1.0
        for j in range(max(a, 1), n_classes + 1):
            allowed = j - a  # class C_j may hold at most j - a requests
            cdf = cdfs[j - 1]
            idx = min(allowed, len(cdf) - 1)
            idle *= float(cdf[idx])
        ys[bus - 1] = 1.0 - idle
    return ys


def bandwidth_kclass(
    class_sizes: Sequence[int],
    n_buses: int,
    request_probability: float | Sequence[float],
) -> float:
    """Return the memory bandwidth ``MBW_p'`` of eq. (12).

    >>> round(bandwidth_kclass([2, 2, 2, 2], 4, 0.65639), 3)  # N=8, uniform
    3.68
    """
    return float(
        np.sum(bus_busy_probabilities(class_sizes, n_buses, request_probability))
    )
