"""Binary surface layout: versioned header, axes, values, checksum.

One encoded surface is a self-describing byte string::

    offset  size  field
    0       8     magic + format  (b"RSURF001")
    8       32    SHA-256 of the signature's canonical JSON
    40      8     version (uint64)
    48      4     n_rates (uint32)
    52      4     n_bus   (uint32)
    56      8     dtype tag (b"<i8<f8\\0\\0": bus axis dtype, value dtype)
    64      32    SHA-256 of the payload bytes
    96      ...   payload: bus int64[n_bus] | rates f8[n_rates]
                  | values f8[n_rates, n_bus]

Data segments in the shared-memory arena are *write-once*: a writer
fills the whole layout before any reader learns the segment's name, so
the only consistency a reader must check is the header — magic, the
expected signature digest and version, and (on first attach) the
payload checksum.  :func:`decode` returns zero-copy read-only NumPy
views over the given buffer; no bytes are duplicated on the read path.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from repro.exceptions import ConfigurationError
from repro.surfaces.grid import Surface, SurfaceSignature

__all__ = ["MAGIC", "HEADER_SIZE", "encode", "decode", "SurfaceCodecError"]

MAGIC = b"RSURF001"
_DTYPE_TAG = b"<i8<f8\x00\x00"
_HEADER = struct.Struct("<8s32sQII8s32s")
HEADER_SIZE = _HEADER.size  # 96 bytes


class SurfaceCodecError(ConfigurationError):
    """A surface buffer failed structural or checksum validation."""


def encoded_size(n_rates: int, n_bus: int) -> int:
    """Total byte size of an encoded ``(n_rates, n_bus)`` surface."""
    return HEADER_SIZE + 8 * (n_bus + n_rates + n_rates * n_bus)


def encode(surface: Surface) -> bytes:
    """Serialize ``surface`` into the headered, checksummed layout."""
    bus = np.ascontiguousarray(surface.bus_counts, dtype=np.int64)
    rates = np.ascontiguousarray(surface.rates, dtype=np.float64)
    values = np.ascontiguousarray(surface.values, dtype=np.float64)
    if values.shape != (rates.size, bus.size):
        raise SurfaceCodecError(
            f"values shape {values.shape} does not match axes "
            f"({rates.size}, {bus.size})"
        )
    payload = bus.tobytes() + rates.tobytes() + values.tobytes()
    header = _HEADER.pack(
        MAGIC,
        surface.signature.digest(),
        int(surface.version),
        rates.size,
        bus.size,
        _DTYPE_TAG,
        hashlib.sha256(payload).digest(),
    )
    return header + payload


def decode(
    buffer,
    signature: SurfaceSignature,
    expected_version: int | None = None,
    verify_checksum: bool = True,
) -> Surface:
    """Deserialize a surface as zero-copy views over ``buffer``.

    ``buffer`` is any object exposing the buffer protocol (typically a
    :class:`multiprocessing.shared_memory.SharedMemory` ``.buf``).  The
    header must carry the magic, ``signature``'s digest and — when given
    — ``expected_version``; mismatches and checksum failures raise
    :class:`SurfaceCodecError` rather than returning a torn or foreign
    surface.
    """
    view = memoryview(buffer)
    if len(view) < HEADER_SIZE:
        raise SurfaceCodecError(
            f"surface buffer of {len(view)} bytes is smaller than the "
            f"{HEADER_SIZE}-byte header"
        )
    magic, sig_digest, version, n_rates, n_bus, dtype_tag, checksum = (
        _HEADER.unpack_from(view, 0)
    )
    if magic != MAGIC:
        raise SurfaceCodecError(
            f"bad surface magic {magic!r} (expected {MAGIC!r})"
        )
    if dtype_tag != _DTYPE_TAG:
        raise SurfaceCodecError(f"unsupported surface dtype tag {dtype_tag!r}")
    if sig_digest != signature.digest():
        raise SurfaceCodecError(
            "surface signature digest mismatch: segment holds "
            f"{sig_digest.hex()[:12]}, expected {signature.short()}"
        )
    if expected_version is not None and version != expected_version:
        raise SurfaceCodecError(
            f"surface version mismatch: segment holds v{version}, "
            f"expected v{expected_version}"
        )
    total = encoded_size(n_rates, n_bus)
    if len(view) < total:
        raise SurfaceCodecError(
            f"surface buffer truncated: {len(view)} bytes, layout "
            f"needs {total}"
        )
    if verify_checksum:
        actual = hashlib.sha256(view[HEADER_SIZE:total]).digest()
        if actual != checksum:
            raise SurfaceCodecError(
                f"surface payload checksum mismatch for "
                f"{signature.short()} v{version}"
            )
    offset = HEADER_SIZE
    bus = np.frombuffer(view, dtype=np.int64, count=n_bus, offset=offset)
    offset += 8 * n_bus
    rates = np.frombuffer(view, dtype=np.float64, count=n_rates, offset=offset)
    offset += 8 * n_rates
    values = np.frombuffer(
        view, dtype=np.float64, count=n_rates * n_bus, offset=offset
    ).reshape(n_rates, n_bus)
    for array in (bus, rates, values):
        array.flags.writeable = False
    return Surface(
        signature=signature,
        version=int(version),
        bus_counts=bus,
        rates=rates,
        values=values,
    )
