"""Availability-weighted bandwidth: EBW(p) across the four schemes.

The acceptance anchor: ``EBW(p=0)`` equals the healthy analytic
bandwidth to 1e-9 for every scheme — the zero-weight failure sets are
skipped exactly, so no Monte-Carlo or enumeration noise can leak into
the fault-free point.
"""

import pytest

from repro import analytic_bandwidth, paper_two_level_model, telemetry
from repro.core.request_models import UniformRequestModel
from repro.exceptions import FaultError
from repro.faults.availability import (
    availability_curve,
    conditional_degraded_bandwidth,
    expected_bandwidth_under_failures,
    scheme_availability_curves,
)
from repro.topology.factory import build_network

SCHEMES = ("full", "partial", "single", "kclass")


def _pair(scheme, n=8, b=4):
    return build_network(scheme, n, n, b), paper_two_level_model(n, rate=1.0)


class TestZeroFailureAnchor:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_ebw_at_p_zero_equals_healthy_analytic(self, scheme):
        network, model = _pair(scheme)
        point = expected_bandwidth_under_failures(network, model, 0.0)
        assert point.expected_bandwidth == pytest.approx(
            analytic_bandwidth(network, model), abs=1e-9
        )
        assert point.retained_fraction == pytest.approx(1.0, abs=1e-9)
        assert point.n_failure_sets == 1  # only the empty set has weight

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_p_zero_anchor_holds_under_uniform_model(self, scheme):
        network, _ = _pair(scheme)
        model = UniformRequestModel(8, 8, rate=0.5)
        point = expected_bandwidth_under_failures(network, model, 0.0)
        assert point.expected_bandwidth == pytest.approx(
            analytic_bandwidth(network, model), abs=1e-9
        )


class TestExpectedBandwidth:
    @pytest.mark.parametrize("scheme", ("full", "partial", "single"))
    def test_curve_decreases_with_failure_probability(self, scheme):
        network, model = _pair(scheme)
        points = availability_curve(network, model, (0.0, 0.05, 0.2, 0.5))
        values = [pt.expected_bandwidth for pt in points]
        assert values == sorted(values, reverse=True)
        assert all(pt.expected_bandwidth >= 0.0 for pt in points)

    def test_p_one_means_no_bandwidth(self):
        network, model = _pair("full")
        point = expected_bandwidth_under_failures(network, model, 1.0)
        assert point.expected_bandwidth == pytest.approx(0.0, abs=1e-12)

    def test_exact_matches_direct_enumeration(self):
        # B = 2 by hand: EBW = (1-p)^2 BW({}) + p(1-p) [BW({0}) + BW({1})].
        network = build_network("full", 8, 8, 2)
        model = paper_two_level_model(8, rate=1.0)
        p = 0.1
        expected = (1 - p) ** 2 * conditional_degraded_bandwidth(
            network, model, ()
        ) + 2 * p * (1 - p) * conditional_degraded_bandwidth(
            network, model, (0,)
        )
        point = expected_bandwidth_under_failures(network, model, p)
        assert point.method == "exact"
        assert point.expected_bandwidth == pytest.approx(expected, abs=1e-12)

    def test_montecarlo_approximates_exact(self):
        network, model = _pair("full")
        p = 0.15
        exact = expected_bandwidth_under_failures(
            network, model, p, method="exact"
        )
        sampled = expected_bandwidth_under_failures(
            network, model, p, method="montecarlo", n_samples=2_000, seed=1
        )
        assert sampled.method == "montecarlo"
        assert sampled.expected_bandwidth == pytest.approx(
            exact.expected_bandwidth, rel=0.05
        )

    def test_full_scheme_collapses_by_symmetry(self):
        # Full connection: BW(F) depends only on |F|, so the shared table
        # holds at most B + 1 entries even under exact enumeration.
        network, model = _pair("full", n=8, b=4)
        with telemetry() as registry:
            expected_bandwidth_under_failures(network, model, 0.3)
            evaluations = registry.counter_total("availability.failure_sets")
        assert evaluations <= network.n_buses + 1

    def test_curve_shares_conditional_table(self):
        network, model = _pair("partial")
        with telemetry() as registry:
            availability_curve(network, model, (0.1, 0.2, 0.3, 0.4))
            evaluations = registry.counter_total("availability.failure_sets")
        # 2^4 failure sets, evaluated once across the whole grid.
        assert evaluations <= 2**network.n_buses


class TestSchemeCurves:
    def test_records_cover_all_schemes_and_models(self):
        records = scheme_availability_curves(
            8, 4, (0.0, 0.1), n_cycles=500, seed=0
        )
        assert {r["scheme"] for r in records} == set(SCHEMES)
        assert {r["model"] for r in records} == {"hier", "unif"}
        for record in records:
            if record["p"] == 0.0:
                assert record["retained"] == pytest.approx(1.0, abs=1e-4)

    def test_invalid_shapes_skipped_not_raised(self):
        # B = 3 cannot host the default 2-group partial scheme.
        records = scheme_availability_curves(
            8, 3, (0.0,), schemes=("full", "partial"), n_cycles=200
        )
        assert {r["scheme"] for r in records} == {"full"}


class TestValidation:
    def test_probability_out_of_range(self):
        network, model = _pair("full")
        for bad in (-0.1, 1.5):
            with pytest.raises(FaultError):
                expected_bandwidth_under_failures(network, model, bad)

    def test_crossbar_rejected(self):
        crossbar = build_network("crossbar", 8, 8, 8)
        model = paper_two_level_model(8)
        with pytest.raises(FaultError):
            expected_bandwidth_under_failures(crossbar, model, 0.1)

    def test_unknown_method_and_bad_samples(self):
        network, model = _pair("full")
        with pytest.raises(FaultError):
            expected_bandwidth_under_failures(
                network, model, 0.1, method="guess"
            )
        with pytest.raises(FaultError):
            expected_bandwidth_under_failures(
                network, model, 0.1, method="montecarlo", n_samples=0
            )
