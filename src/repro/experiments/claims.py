"""E8 — Section IV's narrative claims, as computable checks.

Beyond the raw tables, the paper draws quantitative conclusions; each
becomes a record with the measured quantity and a pass flag:

1. Hierarchical bandwidth >= uniform bandwidth for every scheme/size.
2. Single connection, MBW(B=N) / MBW(B=N/2): ~1.5 (unif, r=1.0),
   ~1.2 (unif, r=0.5), ~1.6 (hier, r=1.0), ~1.28 (hier, r=0.5).
3. Full connection with B = N matches the N x N crossbar; so does single
   connection with B = N.
4. At r = 0.5, B = N/2 performs close to the crossbar (full connection).
5. Bandwidth ordering: full >= partial >= single at equal (N, B); the
   K-class network tracks the partial network closely.
6. Performance/cost: single is the most cost-effective, full the least.
"""

from __future__ import annotations

from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.sweep import paper_model_pair
from repro.analysis.tables import render_table
from repro.experiments.base import ExperimentResult
from repro.topology.cost import cost_report, performance_cost_ratio
from repro.topology.factory import build_network

__all__ = ["run"]


def _mbw(scheme: str, n: int, b: int, model, **kwargs) -> float:
    return analytic_bandwidth(build_network(scheme, n, n, b, **kwargs), model)


def _record(claim: str, detail: str, value: float, passed: bool) -> dict:
    return {
        "claim": claim,
        "detail": detail,
        "value": round(value, 4),
        "passed": passed,
    }


def run() -> ExperimentResult:
    """Evaluate every Section IV claim; all should pass."""
    records: list[dict[str, object]] = []

    # Claim 1: hier >= unif everywhere the paper tabulates.
    worst_gap = float("inf")
    for scheme, bus_counts in (
        ("full", (1, 2, 4, 8)),
        ("single", (1, 2, 4, 8)),
        ("partial", (2, 4, 8)),
        ("kclass", (2, 4, 8)),
    ):
        for n in (8, 16):
            for rate in (1.0, 0.5):
                models = paper_model_pair(n, rate)
                for b in bus_counts:
                    if b > n:
                        continue
                    gap = _mbw(scheme, n, b, models["hier"]) - _mbw(
                        scheme, n, b, models["unif"]
                    )
                    worst_gap = min(worst_gap, gap)
    records.append(
        _record(
            "hier >= unif",
            "min(MBW_hier - MBW_unif) over schemes x N x B x r",
            worst_gap,
            worst_gap >= -1e-9,
        )
    )

    # Claim 2: single-connection N-bus vs N/2-bus ratios (N = 32).
    n = 32
    expectations = (
        ("unif", 1.0, 1.5),
        ("unif", 0.5, 1.2),
        ("hier", 1.0, 1.6),
        ("hier", 0.5, 1.28),
    )
    for model_name, rate, expected in expectations:
        model = paper_model_pair(n, rate)[model_name]
        ratio = _mbw("single", n, n, model) / _mbw("single", n, n // 2, model)
        records.append(
            _record(
                "single B=N / B=N/2 ratio",
                f"{model_name}, r={rate}: expected ~{expected}",
                ratio,
                abs(ratio - expected) < 0.12,
            )
        )

    # Claim 3: crossbar equivalences at B = N.
    for n in (8, 16):
        model = paper_model_pair(n, 1.0)["hier"]
        xbar = analytic_bandwidth(build_network("crossbar", n, n, n), model)
        for scheme in ("full", "single"):
            diff = abs(_mbw(scheme, n, n, model) - xbar)
            records.append(
                _record(
                    f"{scheme}(B=N) == crossbar",
                    f"N={n}, hier, r=1.0: |difference|",
                    diff,
                    diff < 1e-9,
                )
            )

    # Claim 4: at r = 0.5 the half-populated bus pool nears the crossbar.
    for n in (8, 16):
        model = paper_model_pair(n, 0.5)["hier"]
        ratio = _mbw("full", n, n // 2, model) / analytic_bandwidth(
            build_network("crossbar", n, n, n), model
        )
        records.append(
            _record(
                "r=0.5: B=N/2 close to crossbar",
                f"N={n}, full, hier: MBW ratio",
                ratio,
                ratio > 0.9,
            )
        )

    # Claim 5: scheme ordering and partial-vs-kclass proximity.
    for n, b in ((16, 4), (16, 8), (32, 8)):
        model = paper_model_pair(n, 1.0)["hier"]
        full = _mbw("full", n, b, model)
        partial = _mbw("partial", n, b, model)
        kclass = _mbw("kclass", n, b, model)
        single = _mbw("single", n, b, model)
        records.append(
            _record(
                "full >= partial >= single",
                f"N={n}, B={b}, hier, r=1.0",
                full - single,
                full >= partial - 1e-9 and partial >= single - 1e-9,
            )
        )
        rel = abs(partial - kclass) / partial
        records.append(
            _record(
                "kclass tracks partial",
                f"N={n}, B={b}: relative gap",
                rel,
                rel < 0.05,
            )
        )

    # Claim 6: performance/cost ordering (single best, full worst).
    n, b = 16, 8
    model = paper_model_pair(n, 1.0)["hier"]
    ratios = {}
    for scheme in ("full", "partial", "kclass", "single"):
        network = build_network(scheme, n, n, b)
        ratios[scheme] = performance_cost_ratio(
            analytic_bandwidth(network, model), cost_report(network)
        )
    records.append(
        _record(
            "single most cost-effective",
            f"N={n}, B={b}: MBW/connection, single vs best other",
            ratios["single"] / max(ratios["full"], ratios["partial"], ratios["kclass"]),
            ratios["single"] >= max(ratios.values()) - 1e-12,
        )
    )
    records.append(
        _record(
            "full least cost-effective",
            f"N={n}, B={b}: MBW/connection, full vs worst other",
            ratios["full"] / min(ratios.values()),
            ratios["full"] <= min(ratios.values()) + 1e-12,
        )
    )

    rendered = render_table(
        records, title="Section IV claims, recomputed"
    )
    return ExperimentResult(
        experiment_id="claims",
        title="Section IV narrative claims",
        records=records,
        rendered=rendered,
        comparisons=[],
    )
