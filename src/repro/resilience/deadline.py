"""End-to-end latency budgets that travel with a request.

A :class:`Deadline` is created once at ingress — an HTTP request, a
fabric dispatch, a refresh cycle — and *decremented by time itself*:
every hop reads the remaining budget off the same monotonic clock, so
passing a deadline across layers costs nothing and can never drift.
Three propagation channels carry the remaining budget between
processes, all expressed in integral milliseconds:

* the ``X-Repro-Deadline-Ms`` HTTP header (:meth:`Deadline.header_value`
  / :func:`parse_deadline_header`) on service requests;
* the ``deadline_ms`` field of fabric HELLO/WORK frames;
* the ``REPRO_DEADLINE_MS`` environment variable
  (:data:`ENV_DEADLINE_MS`) for spawned fabric workers.

Checkpoints call :meth:`Deadline.check` with a site label; an expired
budget raises :class:`~repro.exceptions.DeadlineExceededError`, which
the HTTP front-end maps to a structured 504 envelope — the typed error
never surfaces as a raw traceback.  Waiting paths bound their blocking
calls with :meth:`Deadline.remaining_seconds` so no dependency stall
can hold a request past its budget.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Callable

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.obs.metrics import get_registry

__all__ = [
    "Deadline",
    "ENV_DEADLINE_MS",
    "DEADLINE_HEADER",
    "parse_deadline_header",
    "deadline_from_env",
]

#: Environment variable carrying the remaining budget to worker spawns.
ENV_DEADLINE_MS = "REPRO_DEADLINE_MS"

#: HTTP request header carrying the remaining budget in milliseconds.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: Largest accepted budget (one hour): anything bigger is a client bug,
#: and the bound keeps arithmetic on remaining time overflow-free.
MAX_BUDGET_MS = 3_600_000.0


class Deadline:
    """A monotonic latency budget shared by every hop of one request.

    Parameters
    ----------
    budget_ms:
        Total budget in milliseconds, measured from construction.
    clock:
        Injectable monotonic clock (seconds), for deterministic tests.
    """

    __slots__ = ("budget_ms", "_clock", "_expires_at")

    def __init__(
        self,
        budget_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if isinstance(budget_ms, bool) or not isinstance(
            budget_ms, (int, float)
        ):
            raise ConfigurationError(
                f"deadline budget must be a number, got {budget_ms!r}"
            )
        budget_ms = float(budget_ms)
        if not math.isfinite(budget_ms) or budget_ms <= 0:
            raise ConfigurationError(
                f"deadline budget must be positive and finite, got "
                f"{budget_ms}"
            )
        if budget_ms > MAX_BUDGET_MS:
            raise ConfigurationError(
                f"deadline budget {budget_ms}ms exceeds the "
                f"{MAX_BUDGET_MS:.0f}ms ceiling"
            )
        self.budget_ms = budget_ms
        self._clock = clock
        self._expires_at = clock() + budget_ms / 1000.0

    def remaining_seconds(self) -> float:
        """Budget left, in seconds; ``0.0`` once expired (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    def remaining_ms(self) -> float:
        """Budget left, in milliseconds; ``0.0`` once expired."""
        return self.remaining_seconds() * 1000.0

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return self._expires_at <= self._clock()

    def check(self, site: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        ``site`` labels the checkpoint (``service.engine``,
        ``fabric.coordinator``, ...) in the error, the
        ``resilience.deadline_exceeded`` counter and the event log.
        """
        if not self.expired:
            return
        registry = get_registry()
        registry.increment("resilience.deadline_exceeded", site=site)
        registry.record_event(
            "resilience.deadline_exceeded",
            site=site,
            budget_ms=self.budget_ms,
        )
        raise DeadlineExceededError(
            f"deadline of {self.budget_ms:.0f}ms exceeded at {site}",
            site=site,
            budget_ms=self.budget_ms,
        )

    def header_value(self) -> str:
        """Remaining budget as the integral-ms wire string (floor, >= 1).

        Flooring keeps the propagated budget conservative — a downstream
        hop never believes it has more time than the ingress granted —
        while the floor of 1 keeps an about-to-expire deadline
        representable (the receiving hop will observe the expiry
        itself).
        """
        return str(max(1, int(self.remaining_ms())))

    def bounded(self, seconds: float | None) -> float | None:
        """``seconds`` capped to the remaining budget.

        The idiom for bounding blocking waits: ``timeout =
        deadline.bounded(poll_interval)``.  ``None`` means "no local
        bound" and yields the plain remaining time.
        """
        remaining = self.remaining_seconds()
        if seconds is None:
            return remaining
        return min(float(seconds), remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_ms={self.budget_ms:.0f}, "
            f"remaining_ms={self.remaining_ms():.0f})"
        )


def parse_deadline_header(value: str) -> Deadline:
    """Parse an ``X-Repro-Deadline-Ms`` header into a fresh budget.

    Rejections are typed :class:`~repro.exceptions.ConfigurationError`
    (→ structured 400), so a malformed header can never crash the
    front-end.
    """
    text = value.strip()
    try:
        budget_ms = int(text)
    except ValueError:
        raise ConfigurationError(
            f"header {DEADLINE_HEADER} must be an integer millisecond "
            f"budget, got {value!r}"
        ) from None
    return Deadline(budget_ms)


def deadline_from_env(
    environ: "os._Environ[str] | dict[str, str] | None" = None,
) -> Deadline | None:
    """The deadline advertised by ``REPRO_DEADLINE_MS``, if any.

    Fabric workers call this once at startup; a missing or empty
    variable means no budget (``None``).  A malformed value raises
    :class:`~repro.exceptions.ConfigurationError` — a worker spawned
    with a corrupt budget must fail loudly, not run unbounded.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_DEADLINE_MS, "").strip()
    if not raw:
        return None
    try:
        budget_ms = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_DEADLINE_MS} must be an integer millisecond budget, "
            f"got {raw!r}"
        ) from None
    return Deadline(budget_ms)
