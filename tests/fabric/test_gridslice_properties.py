"""Property-based tests of the GridSlice algebra (Hypothesis).

The algebra is a thin, law-abiding wrapper over frozensets of flat
indices plus a canonical string codec; these properties pin exactly the
invariants the fabric relies on: ``parse(canonical(s)) == s`` for every
slice (shard addressing survives the wire), the set operations agree
with Python's set semantics (retry bookkeeping), and ``split(n)`` is an
exact balanced partition (no cell lost or duplicated by sharding).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st

from repro.fabric.gridslice import Grid, GridSlice

# -- grid strategies --------------------------------------------------


def _numeric_axis(draw, name):
    kind = draw(st.sampled_from(("int", "float")))
    length = draw(st.integers(min_value=1, max_value=6))
    if kind == "int":
        start = draw(st.integers(min_value=-20, max_value=20))
        step = draw(st.integers(min_value=1, max_value=7))
        values = tuple(start + i * step for i in range(length))
    else:
        base = draw(
            st.floats(
                min_value=-4.0,
                max_value=4.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        step = draw(st.sampled_from((0.125, 0.25, 0.5, 1.5)))
        values = tuple(round(base + i * step, 6) for i in range(length))
    return (name, values)


def _string_axis(draw, name):
    length = draw(st.integers(min_value=1, max_value=4))
    pool = ("alpha", "beta", "gamma", "delta", "hier", "unif")
    values = tuple(draw(st.permutations(pool))[:length])
    return (name, values)


@st.composite
def grids(draw):
    n_axes = draw(st.integers(min_value=1, max_value=3))
    names = ("r", "B", "model")[:n_axes]
    axes = []
    for name in names:
        if draw(st.booleans()):
            axes.append(_numeric_axis(draw, name))
        else:
            axes.append(_string_axis(draw, name))
    return Grid(tuple(axes))


@st.composite
def grid_and_indices(draw, n_sets=1):
    grid = draw(grids())
    sets = [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=grid.size - 1),
                    max_size=grid.size,
                )
            )
        )
        for _ in range(n_sets)
    ]
    return (grid, *sets)


# -- the codec --------------------------------------------------------


@given(grid_and_indices())
def test_canonical_round_trips(data):
    grid, indices = data
    sliced = GridSlice.from_indices(grid, indices)
    text = sliced.canonical()
    assert GridSlice.parse(grid, text) == sliced


@given(grid_and_indices())
def test_canonical_is_a_pure_function_of_the_set(data):
    grid, indices = data
    a = GridSlice.from_indices(grid, indices)
    b = GridSlice.from_indices(grid, sorted(indices, reverse=True))
    assert a.canonical() == b.canonical()


@given(grids())
def test_keywords(grid):
    assert GridSlice.full(grid).canonical() == "all"
    assert GridSlice.empty(grid).canonical() == "empty"


# -- the algebra ------------------------------------------------------


@given(grid_and_indices(n_sets=2))
def test_operations_match_set_semantics(data):
    grid, left, right = data
    a = GridSlice.from_indices(grid, left)
    b = GridSlice.from_indices(grid, right)
    assert (a | b).indices == left | right
    assert (a & b).indices == left & right
    assert (a - b).indices == left - right


@given(grid_and_indices(n_sets=3))
def test_algebra_laws(data):
    grid, x, y, z = data
    a = GridSlice.from_indices(grid, x)
    b = GridSlice.from_indices(grid, y)
    c = GridSlice.from_indices(grid, z)
    assert a | b == b | a
    assert a & b == b & a
    assert (a | b) | c == a | (b | c)
    assert a & (b | c) == (a & b) | (a & c)
    assert (a - b) & b == GridSlice.empty(grid)
    assert (a - b) | (a & b) == a


@given(grid_and_indices())
def test_complement_partitions_the_grid(data):
    grid, indices = data
    a = GridSlice.from_indices(grid, indices)
    assert a | a.complement() == GridSlice.full(grid)
    assert a & a.complement() == GridSlice.empty(grid)


# -- sharding ---------------------------------------------------------


@given(grid_and_indices(), st.integers(min_value=1, max_value=9))
def test_split_partitions_exactly_and_balances(data, n):
    grid, indices = data
    sliced = GridSlice.from_indices(grid, indices)
    shards = sliced.split(n)
    # Non-empty, at most n, pairwise disjoint, covering exactly.
    assert len(shards) <= n
    assert all(shards)
    seen: set[int] = set()
    for shard in shards:
        assert not (seen & shard.indices)
        seen |= shard.indices
    assert seen == set(indices)
    if shards:
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1


@given(grid_and_indices(), st.integers(min_value=1, max_value=9))
def test_split_shards_round_trip_the_codec(data, n):
    grid, indices = data
    for shard in GridSlice.from_indices(grid, indices).split(n):
        assert GridSlice.parse(grid, shard.canonical()) == shard
