"""Stdlib HTTP/1.1 front-end over the query engine (asyncio streams).

No web framework: a long-lived ``asyncio.start_server`` loop parses
minimal HTTP/1.1 requests (request line, headers, ``Content-Length``
body) and maps four routes onto the engine::

    POST /query    one (scheme, N, M, B, r, model) cell
    POST /sweep    one scheme over a bus-count vector
    GET  /healthz  liveness + engine occupancy
    GET  /metrics  Prometheus text dump of the active telemetry registry

Success responses are the engine's JSON envelopes; every failure —
malformed JSON, oversized bodies, invalid parameters, shed requests,
expired deadlines, tripped breakers, shutdown — is a structured JSON
error envelope from :func:`repro.service.protocol.error_envelope` with
the matching status code (400/413/429/503/504), never a traceback.
Shed and breaker-open responses additionally carry a ``Retry-After``
header with the deterministic hint rounded up to whole seconds.

Requests may carry an ``X-Repro-Deadline-Ms`` header: the remaining
end-to-end budget in milliseconds.  It is parsed into a
:class:`~repro.resilience.deadline.Deadline` at ingress and threaded
through the engine; expiry anywhere along the path returns a structured
504 naming the site that observed it.
"""

from __future__ import annotations

import asyncio
import json
import math

from repro.exceptions import (
    AdmissionError,
    BreakerOpenError,
    ConfigurationError,
    QueryTooLargeError,
    ServiceStoppingError,
)
from repro.obs.metrics import get_registry
from repro.obs.exporters import prometheus_text
from repro.resilience import chaos
from repro.resilience.deadline import (
    DEADLINE_HEADER,
    Deadline,
    parse_deadline_header,
)
from repro.service.engine import QueryEngine
from repro.service.protocol import error_envelope

__all__ = ["BandwidthService"]

_MAX_HEADER_BYTES = 16 * 1024

_DEADLINE_HEADER_LOWER = DEADLINE_HEADER.lower()


class _BadRequest(ConfigurationError):
    """Framing-level rejection (malformed request line or headers)."""


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> tuple[str, str, bytes, bool, Deadline | None]:
    """Parse one request; returns ``(method, path, body, close, deadline)``.

    The deadline starts ticking the moment the ``X-Repro-Deadline-Ms``
    header is parsed — header time counts against the budget.
    """
    request_line = await reader.readline()
    if not request_line:
        raise EOFError
    try:
        method, path, _version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise _BadRequest("malformed HTTP request line") from None

    content_length = 0
    close = False
    deadline: Deadline | None = None
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _BadRequest(
                    f"bad Content-Length: {value.strip()!r}"
                ) from None
        elif name == "connection":
            close = value.strip().lower() == "close"
        elif name == _DEADLINE_HEADER_LOWER:
            deadline = parse_deadline_header(value)
    if content_length < 0:
        raise _BadRequest(f"bad Content-Length: {content_length}")
    if content_length > max_body:
        raise QueryTooLargeError(
            f"request body of {content_length} bytes exceeds the "
            f"{max_body}-byte limit"
        )
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, path, body, close, deadline


class BandwidthService:
    """Bind a :class:`~repro.service.engine.QueryEngine` to a TCP port."""

    def __init__(
        self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 0
    ):
        self.engine = engine
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    async def start(self) -> int:
        """Start accepting connections; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.port

    async def stop(self, grace_seconds: float = 1.0) -> None:
        """Graceful shutdown: drain, complete every waiter, tear down.

        Ordering matters: (1) stop accepting connections, (2) begin
        engine shutdown — every in-flight coalesced waiter and queued
        batch submission is *completed* with a structured 503
        (:class:`~repro.exceptions.ServiceStoppingError`), never left
        pending — then (3) give connection handlers ``grace_seconds``
        to write those envelopes out before cancelling stragglers
        (idle keep-alive connections blocked in ``readline``).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.engine.begin_shutdown()
        if self._connections:
            done, pending = await asyncio.wait(
                tuple(self._connections), timeout=grace_seconds
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()
        self.engine.close()

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    method, path, body, close, deadline = await _read_request(
                        reader, self.engine.limits.max_body_bytes
                    )
                except (
                    EOFError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                except Exception as exc:
                    await self._send_error(writer, exc)
                    break
                try:
                    status, payload, headers = await self._dispatch(
                        method, path, body, deadline
                    )
                except Exception as exc:
                    get_registry().increment(
                        "service.http.errors", type=type(exc).__name__
                    )
                    status, envelope = error_envelope(exc)
                    headers = _retry_headers(exc)
                    payload = json.dumps(envelope).encode()
                await _write_response(writer, status, payload, headers)
                if close:  # client sent Connection: close
                    break
        except asyncio.CancelledError:
            # Server shutdown: finishing quietly (rather than staying in a
            # cancelled state) keeps asyncio's stream done-callback from
            # logging a spurious CancelledError for every idle keep-alive.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        deadline: Deadline | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        registry = get_registry()
        registry.increment("service.http.requests", path=path)
        await chaos.ainject("service.http")
        if path == "/healthz" and method == "GET":
            health = {
                "ok": True,
                "status": (
                    "stopping" if self.engine.stopping else "serving"
                ),
                "inflight": self.engine.inflight_count,
                "queue_depth": self.engine.queue_depth,
                "cached_results": self.engine.cache_size,
            }
            return 200, json.dumps(health).encode(), {}
        if path == "/metrics" and method == "GET":
            text = prometheus_text(registry)
            return 200, text.encode(), {"Content-Type": "text/plain"}
        if path in ("/query", "/sweep"):
            if method != "POST":
                raise _BadRequest(f"{path} requires POST, got {method}")
            if self.engine.stopping:
                raise ServiceStoppingError(
                    "service is shutting down; not accepting new queries"
                )
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            response = await self.engine.execute_payload(
                payload, sweep=(path == "/sweep"), deadline=deadline
            )
            # Hot repeats reuse the engine's encoded-bytes LRU instead
            # of rebuilding the envelope and re-serializing it.
            return 200, self.engine.encoded_payload(response), {}
        envelope = {
            "ok": False,
            "error": {
                "status": 404,
                "type": "NotFound",
                "message": f"no route for {method} {path}",
            },
        }
        return 404, json.dumps(envelope).encode(), {}

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: BaseException
    ) -> None:
        status, envelope = error_envelope(exc)
        await _write_response(
            writer, status, json.dumps(envelope).encode(), _retry_headers(exc)
        )


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _retry_headers(exc: BaseException) -> dict[str, str]:
    if isinstance(exc, (AdmissionError, BreakerOpenError)):
        return {"Retry-After": str(math.ceil(exc.retry_after_seconds))}
    return {}


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    headers: dict[str, str],
) -> None:
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(payload)}",
    ]
    header_names = {name.lower() for name in headers}
    if "content-type" not in header_names:
        lines.append("Content-Type: application/json")
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + payload)
    try:
        await writer.drain()
    except ConnectionError:
        pass
