"""Network topology descriptions and the Table I cost model."""

from repro.topology.cost import (
    CostReport,
    cost_report,
    expected_connections,
    performance_cost_ratio,
    symbolic_table,
)
from repro.topology.crossbar import CrossbarNetwork
from repro.topology.factory import (
    build_network,
    equal_class_sizes,
    paper_figure_networks,
)
from repro.topology.full import FullBusMemoryNetwork
from repro.topology.kclass import KClassPartialBusNetwork
from repro.topology.network import MultipleBusNetwork
from repro.topology.generators import (
    GENERATOR_KINDS,
    canonical_generator_spec,
    generate_structure,
    normalize_generator_spec,
)
from repro.topology.partial import PartialBusNetwork
from repro.topology.recognize import (
    Recognition,
    clear_recognition_cache,
    recognize,
    recognize_cached,
)
from repro.topology.single import SingleBusMemoryNetwork
from repro.topology.structure import (
    ConnectionStructure,
    MatchingOracle,
    StructureNetwork,
    maximum_matching,
    structure_of,
)

__all__ = [
    "MultipleBusNetwork",
    "FullBusMemoryNetwork",
    "SingleBusMemoryNetwork",
    "PartialBusNetwork",
    "KClassPartialBusNetwork",
    "CrossbarNetwork",
    "ConnectionStructure",
    "StructureNetwork",
    "MatchingOracle",
    "maximum_matching",
    "structure_of",
    "Recognition",
    "recognize",
    "recognize_cached",
    "clear_recognition_cache",
    "GENERATOR_KINDS",
    "normalize_generator_spec",
    "canonical_generator_spec",
    "generate_structure",
    "CostReport",
    "cost_report",
    "expected_connections",
    "symbolic_table",
    "performance_cost_ratio",
    "build_network",
    "equal_class_sizes",
    "paper_figure_networks",
]
