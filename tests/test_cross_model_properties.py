"""Cross-cutting property tests tying the estimator stack together.

Hypothesis-driven invariants that hold across randomly generated
machines and workloads:

* exact enumeration is bounded between the paper's approximation and
  the bus/demand ceilings;
* every scheme's bandwidth is monotone in the request rate;
* restricting connectivity never gains bandwidth (full is the envelope);
* the simulator, closed forms and exact enumeration rank schemes the
  same way.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.evaluate import analytic_bandwidth
from repro.core.exact import exact_bandwidth
from repro.core.hierarchy import HierarchicalRequestModel
from repro.core.request_models import UniformRequestModel
from repro.topology import (
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
)
from repro.topology.factory import equal_class_sizes


@st.composite
def small_machine(draw):
    """(N, B, model) with N in {4, 6, 8} and a random two-level model."""
    n = draw(st.sampled_from([4, 6, 8]))
    b = draw(st.integers(min_value=1, max_value=n))
    rate = draw(st.floats(min_value=0.1, max_value=1.0))
    favourite = draw(st.floats(min_value=0.3, max_value=0.9))
    rest = 1.0 - favourite
    inner = draw(st.floats(min_value=0.0, max_value=1.0)) * rest
    model = HierarchicalRequestModel.from_aggregate_fractions(
        (2, n // 2), (favourite, inner, rest - inner), rate=rate
    )
    return n, b, model


class TestExactBounds:
    @given(small_machine())
    @settings(max_examples=30, deadline=None)
    def test_exact_between_approximation_and_ceilings(self, machine):
        n, b, model = machine
        network = FullBusMemoryNetwork(n, n, b)
        approx = analytic_bandwidth(network, model)
        exact = exact_bandwidth(network, model)
        assert exact >= approx - 1e-9
        x_sum = float(model.module_request_probabilities().sum())
        assert exact <= min(b, x_sum) + 1e-9

    @given(small_machine())
    @settings(max_examples=20, deadline=None)
    def test_exact_single_at_least_formula(self, machine):
        n, b, model = machine
        network = SingleBusMemoryNetwork(n, n, b)
        assert exact_bandwidth(network, model) >= (
            analytic_bandwidth(network, model) - 1e-9
        )


class TestMonotonicity:
    @given(
        n=st.sampled_from([4, 8]),
        b=st.integers(min_value=1, max_value=4),
        rates=st.tuples(
            st.floats(min_value=0.05, max_value=0.5),
            st.floats(min_value=0.5, max_value=1.0),
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_bandwidth_monotone_in_rate(self, n, b, rates):
        low, high = rates
        network = FullBusMemoryNetwork(n, n, b)
        low_bw = analytic_bandwidth(
            network, UniformRequestModel(n, n, rate=low)
        )
        high_bw = analytic_bandwidth(
            network, UniformRequestModel(n, n, rate=high)
        )
        assert low_bw <= high_bw + 1e-9

    @given(small_machine())
    @settings(max_examples=25, deadline=None)
    def test_full_is_the_envelope(self, machine):
        n, b, model = machine
        full = analytic_bandwidth(FullBusMemoryNetwork(n, n, b), model)
        single = analytic_bandwidth(SingleBusMemoryNetwork(n, n, b), model)
        assert single <= full + 1e-9
        kclass = analytic_bandwidth(
            KClassPartialBusNetwork(
                n, n, b, class_sizes=equal_class_sizes(n, b)
            ),
            model,
        )
        assert kclass <= full + 1e-9
        if b % 2 == 0 and n % 2 == 0:
            partial = analytic_bandwidth(
                PartialBusNetwork(n, n, b, 2), model
            )
            assert partial <= full + 1e-9


class TestEstimatorConsistency:
    def test_all_estimators_rank_schemes_identically(self):
        n, b = 8, 4
        model = HierarchicalRequestModel.from_aggregate_fractions(
            (2, 4), (0.6, 0.25, 0.15), rate=0.8
        )
        networks = {
            "full": FullBusMemoryNetwork(n, n, b),
            "partial": PartialBusNetwork(n, n, b, 2),
            "kclass": KClassPartialBusNetwork(
                n, n, b, class_sizes=[2, 2, 2, 2]
            ),
            "single": SingleBusMemoryNetwork(n, n, b),
        }
        approx_order = sorted(
            networks, key=lambda s: -analytic_bandwidth(networks[s], model)
        )
        exact_order = sorted(
            networks, key=lambda s: -exact_bandwidth(networks[s], model)
        )
        assert approx_order == exact_order

    def test_exact_linear_in_distribution(self):
        # Mixing two workloads mixes bandwidths (serving is per-set
        # deterministic, expectation is linear).  Checked via rates.
        n, b = 6, 3
        network = FullBusMemoryNetwork(n, n, b)
        lo = UniformRequestModel(n, n, rate=0.2)
        hi = UniformRequestModel(n, n, rate=0.8)
        mid = UniformRequestModel(n, n, rate=0.5)
        # Not exactly linear in rate (the set distribution is not), but
        # it must lie strictly between the endpoints.
        assert (
            exact_bandwidth(network, lo)
            < exact_bandwidth(network, mid)
            < exact_bandwidth(network, hi)
        )


class TestRunnerJson:
    def test_json_output(self, capsys):
        import json

        from repro.experiments.runner import main

        code = main(["table1", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert code == 0
        assert payload[0]["experiment_id"] == "table1"
        assert payload[0]["reproduces"] is True
        assert payload[0]["paper_cells_compared"] == 8


class TestDeepHierarchy:
    """Three-level hierarchies agree across all three estimators."""

    def test_three_level_exact_vs_analytic_no_contention(self):
        model = HierarchicalRequestModel.from_aggregate_fractions(
            (2, 2, 2), (0.4, 0.3, 0.2, 0.1), rate=0.9
        )
        network = FullBusMemoryNetwork(8, 8, 8)
        assert exact_bandwidth(network, model) == pytest.approx(
            analytic_bandwidth(network, model), abs=1e-9
        )

    def test_three_level_exact_bounds_analytic(self):
        model = HierarchicalRequestModel.from_aggregate_fractions(
            (2, 2, 2), (0.4, 0.3, 0.2, 0.1), rate=1.0
        )
        for b in (2, 4, 6):
            network = FullBusMemoryNetwork(8, 8, b)
            approx = analytic_bandwidth(network, model)
            exact = exact_bandwidth(network, model)
            assert approx - 1e-9 <= exact <= min(b, 8.0) + 1e-9

    def test_three_level_simulation_matches_exact(self):
        from repro.simulation.engine import simulate_bandwidth

        model = HierarchicalRequestModel.from_aggregate_fractions(
            (2, 2, 2), (0.4, 0.3, 0.2, 0.1), rate=1.0
        )
        network = FullBusMemoryNetwork(8, 8, 4)
        exact = exact_bandwidth(network, model)
        sim = simulate_bandwidth(network, model, n_cycles=30_000, seed=21)
        assert sim.agrees_with(exact, slack=0.02)
