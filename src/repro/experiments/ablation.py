"""E10 — ablations on the paper's design choices.

Three studies the paper motivates but never quantifies:

* **Class placement** (the paper's second design principle): in a K-class
  network, frequently-referenced modules should sit in higher classes
  (more buses).  We build a skewed workload (Das-Bhuyan favourites
  concentrated on half the modules) and compare hot-modules-high vs
  hot-modules-low placements with the per-class generalization of
  eq. (11).
* **Fault-tolerance frontier** (the first design principle): bandwidth
  retained as buses fail, per scheme, at equal (N, B) — making Table I's
  degree column quantitative.
* **Arbitration efficiency**: the two-step K-class procedure wastes a
  bus when a module loses step two while another bus idles; comparing
  against the optimal matching arbiter bounds that loss.
"""

from __future__ import annotations

from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.sweep import paper_model_pair
from repro.analysis.tables import render_table
from repro.arbitration import MatchingBusAssignment
from repro.core.request_models import FavoriteMemoryRequestModel
from repro.experiments.base import ExperimentResult
from repro.faults.analysis import degradation_curve
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology.factory import build_network
from repro.topology.kclass import KClassPartialBusNetwork

__all__ = ["run", "class_placement_study", "skewed_workload"]


def skewed_workload(
    n_processors: int = 16,
    hot_modules: int = 8,
    favorite_fraction: float = 0.7,
    rate: float = 1.0,
) -> FavoriteMemoryRequestModel:
    """A workload concentrating favourites on the first ``hot_modules``.

    Processor ``i``'s favourite is module ``i % hot_modules``, so the
    first ``hot_modules`` modules carry the favourite traffic and the
    rest only background traffic — per-module request probabilities are
    uniform within the hot and cold sets.
    """
    favorites = [i % hot_modules for i in range(n_processors)]
    return FavoriteMemoryRequestModel(
        n_processors,
        n_processors,
        favorite_fraction=favorite_fraction,
        rate=rate,
        favorites=favorites,
    )


def class_placement_study(
    n_processors: int = 16, n_buses: int = 4
) -> list[dict[str, object]]:
    """Compare hot-high vs hot-low module placement in a K-class network.

    Classes are K = B equal classes.  ``hot_high`` puts the hot half of
    the modules into the top classes (paper's recommendation),
    ``hot_low`` inverts it.  Returns one record per placement.
    """
    model = skewed_workload(n_processors)
    n = n_processors
    hot = n // 2
    per_class = n // n_buses
    # hot_high: cold modules fill classes 1..K/2, hot modules K/2+1..K.
    order_high = list(range(hot, n)) + list(range(hot))
    # hot_low: hot modules fill the bottom classes.
    order_low = list(range(hot)) + list(range(hot, n))
    records = []
    for name, order in (("hot_high", order_high), ("hot_low", order_low)):
        class_of_module = [0] * n
        for position, module in enumerate(order):
            class_of_module[module] = position // per_class + 1
        network = KClassPartialBusNetwork(
            n, n, n_buses,
            class_sizes=[per_class] * n_buses,
            class_of_module=class_of_module,
        )
        records.append(
            {
                "placement": name,
                "N": n,
                "B": n_buses,
                "K": n_buses,
                "bandwidth": round(analytic_bandwidth(network, model), 4),
            }
        )
    return records


def _arbitration_gap(
    n: int, b: int, n_cycles: int, seed: int
) -> dict[str, object]:
    """Two-step procedure vs optimal matching on the same K-class net."""
    network = build_network("kclass", n, n, b)
    model = paper_model_pair(n, 1.0)["hier"]
    paper_policy = MultiprocessorSimulator(network, model, seed=seed)
    matched = MultiprocessorSimulator(
        network,
        model,
        policy=MatchingBusAssignment(network.memory_bus_matrix()),
        seed=seed,
    )
    two_step = paper_policy.run(n_cycles).bandwidth
    optimal = matched.run(n_cycles).bandwidth
    return {
        "N": n,
        "B": b,
        "two_step": round(two_step, 4),
        "optimal_matching": round(optimal, 4),
        "loss": round(optimal - two_step, 4),
        "rel_loss": round((optimal - two_step) / optimal, 4),
    }


def run(n_cycles: int = 20_000, seed: int = 11) -> ExperimentResult:
    """Run all three ablations and bundle their tables."""
    placement = class_placement_study()

    frontier: list[dict[str, object]] = []
    n, b = 16, 8
    model = paper_model_pair(n, 1.0)["hier"]
    for scheme, kwargs in (
        ("full", {}),
        ("partial", {"n_groups": 2}),
        ("single", {}),
    ):
        network = build_network(scheme, n, n, b, **kwargs)
        for point in degradation_curve(network, model, max_failures=b - 1):
            frontier.append(
                {
                    "scheme": scheme,
                    "failed_buses": point.n_failed,
                    "mean_MBW": round(point.mean, 3),
                    "worst_MBW": round(point.worst, 3),
                    "accessible": round(point.accessible_fraction, 3),
                }
            )

    arbitration = [
        _arbitration_gap(16, 4, n_cycles, seed),
        _arbitration_gap(16, 8, n_cycles, seed + 1),
    ]

    rendered = "\n\n".join(
        [
            render_table(
                placement,
                title=(
                    "Class placement ablation (skewed workload): hot "
                    "modules in high vs low classes"
                ),
            ),
            render_table(
                frontier,
                title=(
                    f"Degraded-mode bandwidth (N={n}, B={b}, hier r=1.0), "
                    "mean/worst over failure placements"
                ),
            ),
            render_table(
                arbitration,
                title=(
                    "K-class two-step procedure vs optimal matching "
                    "(simulated, hier r=1.0)"
                ),
            ),
        ]
    )
    records = (
        [{"study": "placement", **r} for r in placement]
        + [{"study": "frontier", **r} for r in frontier]
        + [{"study": "arbitration", **r} for r in arbitration]
    )
    return ExperimentResult(
        experiment_id="ablation",
        title="E10: design-principle ablations",
        records=records,
        rendered=rendered,
        comparisons=[],
    )
