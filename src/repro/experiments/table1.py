"""E1 — Table I: cost and fault tolerance of the connection schemes.

Table I is symbolic; this experiment instantiates it on a concrete
machine (default 16 x 16 x 8, the midpoint of the paper's sweeps),
checks every structural metric against the closed-form expressions, and
renders both views.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.base import CellComparison, ExperimentResult
from repro.topology.cost import cost_report, expected_connections, symbolic_table
from repro.topology.factory import build_network

__all__ = ["run"]

_SCHEMES = ("full", "single", "partial", "kclass")


def run(
    n_processors: int = 16, n_memories: int = 16, n_buses: int = 8
) -> ExperimentResult:
    """Reproduce Table I on a concrete machine.

    Comparisons check the structural connection count against the
    paper's closed forms (exact integer agreement expected) and the
    structural fault-tolerance degree against the Table I column.
    """
    records: list[dict[str, object]] = []
    comparisons: list[CellComparison] = []
    expected_ft = {
        "full": n_buses - 1,
        "single": 0,
        "partial": n_buses // 2 - 1,  # default g = 2
        "kclass": 0,  # K = B default -> B - K = 0
    }
    for scheme in _SCHEMES:
        network = build_network(scheme, n_processors, n_memories, n_buses)
        report = cost_report(network)
        records.append(report.as_row())
        comparisons.append(
            CellComparison(
                cell=f"connections[{scheme}]",
                computed=float(report.connections),
                paper=float(expected_connections(network)),
            )
        )
        comparisons.append(
            CellComparison(
                cell=f"fault_tolerance[{scheme}]",
                computed=float(report.degree_of_fault_tolerance),
                paper=float(expected_ft[scheme]),
            )
        )
    rendered = "\n\n".join(
        [
            render_table(
                symbolic_table(),
                title="Table I (symbolic, as printed in the paper)",
            ),
            render_table(
                records,
                title=(
                    f"Table I instantiated at N={n_processors}, "
                    f"M={n_memories}, B={n_buses} (partial: g=2, "
                    f"kclass: K=B equal classes)"
                ),
            ),
        ]
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: cost and fault tolerance of multiple bus networks",
        records=records,
        rendered=rendered,
        comparisons=comparisons,
    )
