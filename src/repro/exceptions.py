"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` from bad API usage, etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A system was configured with structurally invalid parameters.

    Examples: a multiple bus network with more buses than memory modules,
    a partial bus network whose group count does not divide the bus count,
    or a K-class network with ``K > B``.
    """


class ModelError(ReproError):
    """A request model was constructed with invalid probabilities.

    Examples: request fractions that do not sum to one, a negative request
    rate, or a hierarchy whose cluster sizes do not factor the machine size.
    """


class SimulationError(ReproError):
    """The Monte-Carlo simulator was driven with inconsistent inputs.

    Examples: a request model whose dimensions do not match the topology,
    or a non-positive cycle count.
    """


class FaultError(ReproError):
    """A fault-injection request was invalid.

    Examples: failing a bus index that does not exist, or failing every bus
    of a network and then asking for its bandwidth.
    """


class ExperimentError(ReproError):
    """An experiment harness was asked for an unknown table or figure."""
