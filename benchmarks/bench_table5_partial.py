"""E5 benchmark: regenerate Table V (partial bus networks, g = 2)."""

from repro.experiments import table5


def test_table5_partial(benchmark, reproduces):
    result = benchmark(table5.run)
    reproduces(result)
    assert result.n_compared >= 45
