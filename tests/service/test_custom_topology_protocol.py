"""The ``scheme="custom"`` generator-spec surface of the query service.

Malformed generator specs must become structured 4xx envelopes on the
same typed path as every other protocol rejection; well-formed specs
must canonicalize so spelling variants share one cache identity while
*different structures* never collide; and a rejected spec must never
poison the engine — the same engine instance keeps answering after any
sequence of bad payloads.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.batch import scheme_bus_profile
from repro.core.request_models import UniformRequestModel
from repro.exceptions import (
    ConfigurationError,
    QueryTooLargeError,
    ReproError,
)
from repro.service import QueryEngine
from repro.service.protocol import (
    ServiceLimits,
    error_envelope,
    parse_query,
    status_for,
)

VALID = {
    "scheme": "custom", "N": 8, "M": 8, "B": 4,
    "generator": {"kind": "grouped", "n_groups": 2},
}


# ----------------------------------------------------------------------
# Parsing and canonicalization
# ----------------------------------------------------------------------


def test_generator_spec_lands_in_network_kwargs_canonically():
    query = parse_query(VALID)
    assert query.scheme == "custom"
    (name, spec), = query.network_kwargs
    assert name == "generator"
    assert spec == (("kind", "grouped"), ("n_groups", 2))


def test_spelling_variants_share_one_cache_identity():
    base = parse_query(VALID)
    # Defaults filled in explicitly must hash identically: the waxman
    # spec spells out exactly the defaults normalize would fill.
    implicit = parse_query({
        "scheme": "custom", "N": 8, "B": 4,
        "generator": {"kind": "waxman"},
    })
    explicit = parse_query({
        "scheme": "custom", "N": 8, "B": 4,
        "generator": {"kind": "waxman", "alpha": 0.9, "beta": 0.5,
                      "seed": 0},
    })
    assert implicit == explicit
    assert hash(implicit) == hash(explicit)
    assert implicit != base


def test_different_structures_never_collide():
    left = parse_query(VALID)
    right = parse_query({
        "scheme": "custom", "N": 8, "M": 8, "B": 4,
        "generator": {"kind": "grouped", "n_groups": 4},
    })
    assert left != right
    assert left.network_kwargs != right.network_kwargs


# ----------------------------------------------------------------------
# Negative cases: every rejection is a typed 4xx envelope
# ----------------------------------------------------------------------


BAD_PAYLOADS = [
    ("custom-without-generator",
     {"scheme": "custom", "N": 8, "B": 4}),
    ("generator-on-paper-scheme",
     {"scheme": "full", "N": 8, "B": 4,
      "generator": {"kind": "grouped", "n_groups": 2}}),
    ("generator-not-a-mapping",
     {"scheme": "custom", "N": 8, "B": 4, "generator": "grouped"}),
    ("unknown-kind",
     {"scheme": "custom", "N": 8, "B": 4,
      "generator": {"kind": "smallworld"}}),
    ("missing-required-field",
     {"scheme": "custom", "N": 8, "B": 4,
      "generator": {"kind": "grouped"}}),
    ("unknown-field",
     {"scheme": "custom", "N": 8, "B": 4,
      "generator": {"kind": "grouped", "n_groups": 2, "depth": 1}}),
    ("bool-spelled-int",
     {"scheme": "custom", "N": 8, "B": 4,
      "generator": {"kind": "grouped", "n_groups": True}}),
    ("ragged-matrix",
     {"scheme": "custom", "N": 8, "M": 3, "B": 2,
      "generator": {"kind": "matrix",
                    "memory_bus": [[1, 0], [1], [0, 1]]}}),
    ("empty-memory-row",
     {"scheme": "custom", "N": 8, "M": 3, "B": 2,
      "generator": {"kind": "matrix",
                    "memory_bus": [[1, 0], [0, 0], [0, 1]]}}),
    ("dangling-bus",
     {"scheme": "custom", "N": 8, "M": 3, "B": 2,
      "generator": {"kind": "matrix",
                    "memory_bus": [[1, 0], [1, 0], [1, 0]]}}),
]


@pytest.mark.parametrize(
    "payload",
    [case[1] for case in BAD_PAYLOADS],
    ids=[case[0] for case in BAD_PAYLOADS],
)
def test_malformed_spec_is_typed_4xx(payload):
    with pytest.raises(ReproError) as excinfo:
        parse_query(payload)
    status, body = error_envelope(excinfo.value)
    assert status == status_for(excinfo.value)
    assert 400 <= status < 500
    assert body["ok"] is False
    assert body["error"]["type"] == type(excinfo.value).__name__
    assert body["error"]["message"]  # never a traceback, never empty


def test_oversized_matrix_spec_is_429_capacity_not_400():
    limits = ServiceLimits(max_machine=16)
    rows = [[1] * 8 for _ in range(64)]
    with pytest.raises(QueryTooLargeError) as excinfo:
        parse_query(
            {"scheme": "custom", "N": 8, "M": 64, "B": 8,
             "generator": {"kind": "matrix", "memory_bus": rows}},
            limits=limits,
        )
    assert status_for(excinfo.value) in (413, 429)


# ----------------------------------------------------------------------
# Engine integration: correctness, caching, and no poisoning
# ----------------------------------------------------------------------


def test_engine_value_matches_batch_profile_bit_identically():
    engine = QueryEngine()

    async def main():
        return await engine.execute_payload(VALID)

    response = asyncio.run(main())
    engine.close()
    profile = scheme_bus_profile(
        "custom", 8, 8, [4], UniformRequestModel(8, 8, rate=1.0),
        generator={"kind": "grouped", "n_groups": 2},
    )
    assert response.values == profile.values


def test_rejected_specs_do_not_poison_the_engine():
    engine = QueryEngine()

    async def main():
        outcomes = []
        for _, payload in BAD_PAYLOADS:
            try:
                await engine.execute_payload(payload)
                outcomes.append("accepted")
            except ReproError:
                outcomes.append("rejected")
        good = await engine.execute_payload(VALID)
        again = await engine.execute_payload(VALID)
        return outcomes, good, again

    outcomes, good, again = asyncio.run(main())
    engine.close()
    assert outcomes == ["rejected"] * len(BAD_PAYLOADS)
    assert good.source == "computed"
    assert again.source == "cache"
    assert again.values == good.values


def test_infeasible_dimensions_surface_as_skips_not_errors():
    # mesh_rowcol pins B = rows + cols: a sweep over other counts skips
    # those cells exactly like the paper tables' blank cells.
    engine = QueryEngine()
    payload = {
        "scheme": "custom", "N": 8, "M": 12, "B": [5, 7],
        "generator": {"kind": "mesh_rowcol", "rows": 3, "cols": 4},
    }

    async def main():
        return await engine.execute_payload(payload, sweep=True)

    response = asyncio.run(main())
    engine.close()
    assert sorted(response.values) == [7]
    assert [s["B"] for s in response.skipped] == [5]
    assert response.skipped[0]["reason_code"] == "generator_pins_bus_count"
