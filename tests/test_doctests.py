"""Run every library docstring example as a test.

Docstring examples are part of the documented API surface; this keeps
them from rotting as the code evolves.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _library_modules():
    names = [repro.__name__]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _library_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{module_name}: {results.failed} doctest failure(s)"
    )
