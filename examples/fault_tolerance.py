"""Fault tolerance: verified degrees and degraded-mode bandwidth.

Quantifies what Table I states qualitatively:

* verifies each scheme's degree of fault tolerance by exhaustive
  failure enumeration,
* plots (as text) bandwidth retention as buses fail,
* demonstrates the K-class network's *graded* tolerance — the paper's
  selling point: critical data in high classes survives more failures.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    KClassPartialBusNetwork,
    build_network,
    degradation_curve,
    fail_buses,
    paper_two_level_model,
    render_table,
    verify_fault_tolerance_degree,
)

N, B = 16, 8


def main() -> None:
    model = paper_two_level_model(N, rate=1.0)

    # --- 1. Verify Table I's fault-tolerance column --------------------
    rows = []
    for scheme in ("full", "partial", "kclass", "single"):
        network = build_network(scheme, N, N, B)
        rows.append(
            {
                "scheme": scheme,
                "verified degree": verify_fault_tolerance_degree(network),
            }
        )
    print(render_table(
        rows, title=f"Exhaustively verified fault tolerance (N={N}, B={B})"
    ))

    # --- 2. Bandwidth retention curves ---------------------------------
    print()
    curve_rows = []
    for scheme in ("full", "partial", "single"):
        network = build_network(scheme, N, N, B)
        for point in degradation_curve(network, model, max_failures=4):
            curve_rows.append(
                {
                    "scheme": scheme,
                    "failed": point.n_failed,
                    "mean MBW": round(point.mean, 2),
                    "worst MBW": round(point.worst, 2),
                    "modules reachable": f"{point.accessible_fraction:.0%}",
                }
            )
    print(render_table(
        curve_rows,
        title="Degraded-mode bandwidth (closed forms, hier model r = 1.0)",
    ))

    # --- 3. Graded tolerance of the K-class design ---------------------
    print()
    network = KClassPartialBusNetwork(N, N, B, class_sizes=[4, 4, 4, 4])
    print(
        f"K-class network, K=4, B={B}: class C_j reaches buses 1..(j+4), "
        "so class C_1 owns 5 buses and C_4 all 8."
    )
    grade_rows = []
    for n_failed in (1, 3, 5, 6, 7):
        failures = set(range(n_failed))  # low buses die first: worst case
        degraded = fail_buses(network, failures)
        reachable = degraded.accessible_memories()
        per_class = [
            f"C{j}:{int(reachable[network.modules_of_class(j)].sum())}/4"
            for j in range(1, 5)
        ]
        grade_rows.append(
            {
                "failed buses": f"0..{n_failed - 1}",
                "reachable modules by class": "  ".join(per_class),
            }
        )
    print(render_table(
        grade_rows,
        title="Graded degradation under worst-case (low-bus-first) failures",
    ))

    print(
        "\nClasses die in order: C_1 after 5 failures, C_2 after 6, C_3 "
        "after 7, while C_4 survives anything short of total loss. A "
        "partial bus network with g groups gives every module the same "
        "B/g - 1 tolerance; the K-class design lets the architect grade "
        "it per data criticality — the flexibility the paper claims."
    )


if __name__ == "__main__":
    main()
