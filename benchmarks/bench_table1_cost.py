"""E1 benchmark: regenerate Table I (cost and fault tolerance)."""

from repro.experiments import table1


def test_table1_cost(benchmark, reproduces):
    result = benchmark(table1.run)
    reproduces(result)
    assert len(result.records) == 4
