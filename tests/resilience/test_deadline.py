"""Deadline budgets: arithmetic, checkpoints, and propagation channels.

A fake monotonic clock makes every assertion exact — no sleeps, no
flaky margins.  The propagation tests pin the conservative-floor
contract: a budget re-encoded for the next hop is never larger than
what actually remains.
"""

import pytest

from repro import build_manifest, telemetry
from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.resilience.deadline import (
    DEADLINE_HEADER,
    ENV_DEADLINE_MS,
    MAX_BUDGET_MS,
    Deadline,
    deadline_from_env,
    parse_deadline_header,
)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestArithmetic:
    def test_budget_counts_down_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(250.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(250.0)
        clock.advance(0.1)
        assert deadline.remaining_ms() == pytest.approx(150.0)
        assert not deadline.expired

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining_seconds() == 0.0
        assert deadline.remaining_ms() == 0.0
        assert deadline.expired

    def test_bounded_caps_waits_to_the_budget(self):
        clock = FakeClock()
        deadline = Deadline(1000.0, clock=clock)
        assert deadline.bounded(0.5) == pytest.approx(0.5)
        assert deadline.bounded(5.0) == pytest.approx(1.0)
        assert deadline.bounded(None) == pytest.approx(1.0)
        clock.advance(2.0)
        assert deadline.bounded(0.5) == 0.0

    @pytest.mark.parametrize(
        "budget", [0, -1, float("nan"), float("inf"), "100", True, None]
    )
    def test_invalid_budgets_rejected(self, budget):
        with pytest.raises(ConfigurationError):
            Deadline(budget)

    def test_budget_ceiling_enforced(self):
        with pytest.raises(ConfigurationError):
            Deadline(MAX_BUDGET_MS + 1)
        Deadline(MAX_BUDGET_MS)  # exactly at the ceiling is fine


class TestCheckpoints:
    def test_check_passes_while_budget_remains(self):
        clock = FakeClock()
        Deadline(100.0, clock=clock).check("service.engine")

    def test_check_raises_typed_error_with_site(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("fabric.coordinator")
        assert excinfo.value.site == "fabric.coordinator"
        assert excinfo.value.budget_ms == pytest.approx(100.0)

    def test_expiry_lands_in_metrics_and_manifest(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        clock.advance(1.0)
        with telemetry() as registry:
            with pytest.raises(DeadlineExceededError):
                deadline.check("service.engine")
        section = build_manifest(registry)["resilience"]
        assert section["deadline_exceeded"] == {"service.engine": 1}


class TestPropagation:
    def test_header_value_floors_conservatively(self):
        clock = FakeClock()
        deadline = Deadline(250.7, clock=clock)
        clock.advance(0.0501)
        # 200.6ms remain; the wire value floors to 200.
        assert deadline.header_value() == "200"

    def test_header_value_of_expired_budget_is_one(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance(1.0)
        # Still representable: the next hop observes the expiry itself.
        assert deadline.header_value() == "1"

    def test_parse_header_roundtrip(self):
        deadline = parse_deadline_header("  750 ")
        assert deadline.budget_ms == 750.0
        assert deadline.remaining_ms() <= 750.0

    @pytest.mark.parametrize("raw", ["", "abc", "1.5", "10ms"])
    def test_malformed_header_is_typed_error(self, raw):
        with pytest.raises(ConfigurationError, match=DEADLINE_HEADER):
            parse_deadline_header(raw)

    def test_env_channel(self):
        assert deadline_from_env({}) is None
        assert deadline_from_env({ENV_DEADLINE_MS: ""}) is None
        deadline = deadline_from_env({ENV_DEADLINE_MS: "300"})
        assert deadline is not None and deadline.budget_ms == 300.0
        with pytest.raises(ConfigurationError):
            deadline_from_env({ENV_DEADLINE_MS: "nope"})
