"""Structure recognizer: map an incidence pair back to a paper scheme.

Given a :class:`~repro.topology.structure.ConnectionStructure`, decide
whether it is (up to processor/bus/memory permutation) one of the
closed-form schemes -- full, single, partial, kclass -- so that the
batched analytic profiles of :mod:`repro.analysis.batch` remain the fast
path.  A crossbar's incidence pair is indistinguishable from
``full(N, M, B=min(N, M))`` and is recognized as ``full`` (the analytic
values coincide for the paper's square configurations).

A :class:`Recognition` carries the ``build_network`` kwargs that rebuild
an equivalent network.  ``module_safe`` records whether those kwargs pin
down the *per-module* layout exactly: when a structure is a permuted
partial scheme, ``n_groups`` alone loses which module sits in which
group, which matters for heterogeneous request models -- such
recognitions are only used as a fast path when the request model is
module-symmetric.

Recognition runs once per distinct structure: :func:`recognize_cached`
memoizes by content digest and reports hit/miss counts to the telemetry
registry (``topology.recognition_cache``), keeping recognition off the
per-query hot path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.topology.structure import ConnectionStructure

__all__ = ["Recognition", "recognize", "recognize_cached", "clear_recognition_cache"]

_CACHE_CAPACITY = 4096


@dataclass(frozen=True)
class Recognition:
    """Outcome of recognizing a structure as a paper scheme.

    ``network_kwargs`` is a canonical sorted tuple of ``(name, value)``
    pairs suitable for ``build_network(scheme, N, M, B, **kwargs)``.
    ``module_safe`` is True when the kwargs reproduce the per-module
    attachment pattern exactly (safe under heterogeneous request models).
    """

    scheme: str
    network_kwargs: tuple = ()
    module_safe: bool = True
    note: str = field(default="", compare=False)

    def kwargs(self) -> dict:
        return {name: value for name, value in self.network_kwargs}


def _recognize_single(memory_bus: np.ndarray) -> Recognition | None:
    """Each module on exactly one bus -> single-bus scheme."""
    n_memories, n_buses = memory_bus.shape
    if not (memory_bus.sum(axis=1) == 1).all():
        return None
    bus_of = memory_bus.argmax(axis=1)
    if len(set(int(b) for b in bus_of)) != n_buses:
        # Some bus carries no module; dangling buses have no single-bus
        # counterpart (SingleBusNetwork requires every bus loaded).
        return None
    base, extra = divmod(n_memories, n_buses)
    default = np.repeat(
        np.arange(n_buses), [base + 1 if i < extra else base for i in range(n_buses)]
    )
    if np.array_equal(bus_of, default):
        return Recognition("single")
    return Recognition(
        "single",
        (("bus_of_module", tuple(int(b) for b in bus_of)),),
        note="explicit module-to-bus map",
    )


def _recognize_partial(memory_bus: np.ndarray) -> Recognition | None:
    """Disjoint equal complete-bipartite blocks -> partial scheme."""
    n_memories, n_buses = memory_bus.shape
    row_sets: dict[frozenset, list] = {}
    for module, row in enumerate(memory_bus):
        row_sets.setdefault(frozenset(np.flatnonzero(row).tolist()), []).append(module)
    groups = list(row_sets.items())
    n_groups = len(groups)
    if n_groups < 2:
        return None
    if n_memories % n_groups or n_buses % n_groups:
        return None
    modules_per_group = n_memories // n_groups
    buses_per_group = n_buses // n_groups
    seen_buses: set = set()
    for bus_set, members in groups:
        if len(bus_set) != buses_per_group or len(members) != modules_per_group:
            return None
        if bus_set & seen_buses:
            return None
        seen_buses |= bus_set
    if len(seen_buses) != n_buses:
        return None
    # Contiguous default layout: groups ordered by smallest bus, modules and
    # buses both in ascending blocks.
    groups.sort(key=lambda item: min(item[0]))
    contiguous = all(
        bus_set == frozenset(range(q * buses_per_group, (q + 1) * buses_per_group))
        and members
        == list(range(q * modules_per_group, (q + 1) * modules_per_group))
        for q, (bus_set, members) in enumerate(groups)
    )
    if contiguous:
        return Recognition("partial", (("n_groups", n_groups),))
    # Permuted partial: n_groups captures the bandwidth-relevant shape only
    # for module-symmetric request models; per-module layout is lost.
    return Recognition(
        "partial",
        (("n_groups", n_groups),),
        module_safe=False,
        note="permuted group layout",
    )


def _recognize_kclass(memory_bus: np.ndarray) -> Recognition | None:
    """Nested row attachment sets -> K-class hierarchical scheme."""
    n_memories, n_buses = memory_bus.shape
    row_sets = [frozenset(np.flatnonzero(row).tolist()) for row in memory_bus]
    distinct = sorted(set(row_sets), key=len)
    widths = [len(s) for s in distinct]
    if len(set(widths)) != len(widths):
        # Two distinct sets of equal width cannot nest.
        return None
    for smaller, larger in zip(distinct, distinct[1:]):
        if not smaller <= larger:
            return None
    if distinct[-1] != frozenset(range(n_buses)):
        # Class K must reach every bus, otherwise some bus is dangling or
        # the widths do not line up with the paper's scheme.
        return None
    min_width = widths[0]
    n_classes = n_buses - min_width + 1
    # Class j (1-based) has width j + B - K; zero-size classes fill the gaps
    # for widths that no module uses.
    class_of_module = [len(row_sets[j]) - min_width + 1 for j in range(n_memories)]
    class_sizes = [0] * n_classes
    for cls in class_of_module:
        class_sizes[cls - 1] += 1
    natural_prefix = all(s == frozenset(range(len(s))) for s in distinct)
    default_order = class_of_module == sorted(class_of_module)
    kwargs: list = [("class_sizes", tuple(class_sizes))]
    note = ""
    if not (natural_prefix and default_order):
        kwargs.append(("class_of_module", tuple(class_of_module)))
        note = "bus-permuted" if not natural_prefix else "module-permuted"
    return Recognition("kclass", tuple(sorted(kwargs)), note=note)


def recognize(structure: ConnectionStructure) -> Recognition | None:
    """Recognize a structure as a paper scheme, or return None.

    Only structures whose processors attach to every bus are candidates:
    the paper's model (and this repo's evaluation layers) assume the
    processor side is complete.
    """
    if not structure.uniform_processors:
        return None
    memory_bus = structure.memory_bus
    if memory_bus.all():
        return Recognition("full")
    for rule in (_recognize_single, _recognize_partial, _recognize_kclass):
        recognition = rule(memory_bus)
        if recognition is not None:
            return recognition
    return None


_cache: OrderedDict = OrderedDict()
_cache_lock = threading.Lock()


def recognize_cached(structure: ConnectionStructure) -> Recognition | None:
    """Digest-keyed memoized :func:`recognize` with telemetry counters."""
    key = structure.digest()
    with _cache_lock:
        if key in _cache:
            _cache.move_to_end(key)
            hit = True
            recognition = _cache[key]
        else:
            hit = False
    if hit:
        get_registry().increment("topology.recognition_cache", result="hit")
        return recognition
    recognition = recognize(structure)
    with _cache_lock:
        _cache[key] = recognition
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
    get_registry().increment("topology.recognition_cache", result="miss")
    return recognition


def clear_recognition_cache() -> None:
    with _cache_lock:
        _cache.clear()
