"""Cross-scheme comparison: bandwidth, cost and performance/cost ratio.

Implements Section IV's qualitative conclusions as computable artifacts:
for a fixed machine, every scheme's bandwidth, connection cost, per-bus
load, fault tolerance and bandwidth-per-connection land in one record
list, ready for rendering or assertion.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.analysis.evaluate import analytic_bandwidth
from repro.core.request_models import RequestModel
from repro.exceptions import ConfigurationError
from repro.topology.cost import cost_report, performance_cost_ratio
from repro.topology.factory import build_network

__all__ = ["SchemeComparison", "compare_schemes"]

_DEFAULT_SCHEMES = ("full", "partial", "kclass", "single", "crossbar")


@dataclasses.dataclass(frozen=True)
class SchemeComparison:
    """One scheme's figures of merit on a fixed machine and workload."""

    scheme: str
    bandwidth: float
    connections: int
    max_bus_load: int
    fault_tolerance: int
    bandwidth_per_connection: float

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "scheme": self.scheme,
            "MBW": round(self.bandwidth, 3),
            "connections": self.connections,
            "max load": self.max_bus_load,
            "fault tol.": self.fault_tolerance,
            "MBW/conn": round(self.bandwidth_per_connection, 5),
        }


def compare_schemes(
    n_processors: int,
    n_buses: int,
    model: RequestModel,
    schemes: Sequence[str] = _DEFAULT_SCHEMES,
    n_memories: int | None = None,
) -> list[SchemeComparison]:
    """Evaluate every scheme on the same machine and request model.

    Schemes structurally impossible at these parameters (e.g. partial
    with ``g=2`` when ``B`` is odd) are skipped.  Results are sorted by
    decreasing bandwidth, which for the paper's configurations yields
    full >= partial ~ kclass >= single — the ordering Section IV reports.
    """
    if n_memories is None:
        n_memories = model.n_memories
    rows: list[SchemeComparison] = []
    for scheme in schemes:
        try:
            network = build_network(scheme, n_processors, n_memories, n_buses)
        except ConfigurationError:
            continue
        bandwidth = analytic_bandwidth(network, model)
        report = cost_report(network)
        rows.append(
            SchemeComparison(
                scheme=scheme,
                bandwidth=bandwidth,
                connections=report.connections,
                max_bus_load=report.max_bus_load,
                fault_tolerance=report.degree_of_fault_tolerance,
                bandwidth_per_connection=performance_cost_ratio(
                    bandwidth, report
                ),
            )
        )
    return sorted(rows, key=lambda row: -row.bandwidth)
