"""``repro-fabric`` — run a distributed Monte-Carlo sweep from the shell.

Dispatches one sweep job across a tree of fabric worker processes and
prints the records (rendered table or JSON) plus a shard/timing
summary.  Axis flags accept the same compact range syntax GridSlice
canonical strings use: ``--buses 2-16/2`` is buses 2, 4, ..., 16 and
``--rates 0.25-1.0/0.25`` is the paper's rate grid; plain comma lists
work too.

With ``--telemetry DIR`` the run executes under a live registry and
writes the standard artifact trio (``manifest.json`` — including the
``fabric`` section with the shard map — ``events.jsonl``,
``metrics.prom``) into DIR, mirroring ``repro-experiments``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.fabric.coordinator import (
    FabricConfig,
    FabricCoordinator,
    FabricLimits,
)
from repro.fabric.jobs import FabricJob
from repro.obs.exporters import write_events_jsonl, write_prometheus
from repro.obs.manifest import write_manifest
from repro.obs.metrics import enable_telemetry
from repro.resilience import chaos
from repro.resilience.deadline import Deadline, deadline_from_env

__all__ = ["build_parser", "parse_axis", "main"]


def parse_axis(text: str, cast=float) -> list:
    """Parse ``2-16/2`` / ``0.25-1.0/0.25`` / ``2,4,8`` axis syntax."""
    values: list = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        # A range is "lo-hi[/step]" where "-" separates two values; a
        # leading "-" would be a sign, but axes here are positive.
        body, _, step_text = token.partition("/")
        lo_text, dash, hi_text = body.partition("-")
        if dash and lo_text:
            lo, hi = cast(lo_text), cast(hi_text)
            step = cast(step_text) if step_text else cast(1)
            if step <= 0 or hi < lo:
                raise ConfigurationError(f"bad axis range {token!r}")
            count = int(round((hi - lo) / step)) + 1
            values.extend(cast(lo + i * step) for i in range(count))
        else:
            values.append(cast(token))
    if not values:
        raise ConfigurationError(f"empty axis specification {text!r}")
    if cast is float:
        values = [round(v, 12) for v in values]
    return values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fabric",
        description=(
            "Run a Monte-Carlo bandwidth sweep across a tree of fabric "
            "worker processes; records are bit-identical to the "
            "single-process executor."
        ),
    )
    parser.add_argument("--scheme", default="full",
                        help="connection scheme (default: full)")
    parser.add_argument("--N", type=int, default=16,
                        help="processor count")
    parser.add_argument("--M", type=int, default=None,
                        help="memory-module count (default: N)")
    parser.add_argument("--buses", default="2-8/2", metavar="SPEC",
                        help="bus-count axis, e.g. 2-16/2 or 2,4,8")
    parser.add_argument("--rates", default="0.25-1.0/0.25", metavar="SPEC",
                        help="request-rate axis, e.g. 0.25-1.0/0.25")
    parser.add_argument("--cycles", type=int, default=20_000,
                        help="simulated cycles per cell")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed (per-cell seeds spawn from it "
                        "by grid index)")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "loop", "vectorized"))
    parser.add_argument("--workers", type=int, default=4,
                        help="fabric worker processes")
    parser.add_argument("--arity", type=int, default=8,
                        help="worker-tree fan-out")
    parser.add_argument("--codec", default="auto",
                        choices=("auto", "json", "msgpack"),
                        help="wire codec for fabric frames")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="ResultCache directory (cells already "
                        "present are served from disk)")
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="write manifest.json / events.jsonl / "
                        "metrics.prom into DIR")
    parser.add_argument("--chaos-plan", metavar="FILE", default=None,
                        help="install a deterministic fault-injection "
                        "plan (JSON FaultPlan) for this run")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="end-to-end budget for the dispatch+gather "
                        "phase; expiry is a structured error, not a hang "
                        "(default: REPRO_DEADLINE_MS if set)")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5,
                        help="seconds between worker heartbeats")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        help="heartbeat silence after which a worker is "
                        "declared dead and its cells re-sharded")
    parser.add_argument("--json", action="store_true",
                        help="emit records as JSON instead of a table")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the rendered table "
                        "(summary line only)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        bus_counts = parse_axis(args.buses, int)
        rates = parse_axis(args.rates, float)
    except ConfigurationError as exc:
        print(f"repro-fabric: {exc}", file=sys.stderr)
        return 2

    params: dict = {
        "scheme": args.scheme,
        "N": args.N,
        "bus_counts": bus_counts,
        "rates": rates,
        "n_cycles": args.cycles,
        "seed": args.seed,
        "backend": args.backend,
    }
    if args.M is not None:
        params["M"] = args.M
    try:
        limits = FabricLimits(
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
        )
        plan = (
            chaos.FaultPlan.from_file(args.chaos_plan)
            if args.chaos_plan
            else None
        )
    except ConfigurationError as exc:
        print(f"repro-fabric: {exc}", file=sys.stderr)
        return 2
    coordinator = FabricCoordinator(
        FabricJob(kind="sweep", params=params),
        FabricConfig(
            n_workers=args.workers,
            arity=args.arity,
            codec=args.codec,
            limits=limits,
        ),
        cache=args.cache,
    )
    deadline = (
        Deadline(args.deadline_ms)
        if args.deadline_ms is not None
        else deadline_from_env()
    )

    registry = enable_telemetry() if args.telemetry else None
    if plan is not None:
        chaos.install_plan(plan)
    started = time.perf_counter()
    try:
        report = coordinator.run(deadline=deadline)
    except DeadlineExceededError as exc:
        print(f"repro-fabric: deadline exceeded: {exc}", file=sys.stderr)
        return 3
    finally:
        if plan is not None:
            chaos.uninstall_plan()
        if registry is not None:
            write_manifest(
                registry,
                f"{args.telemetry}/manifest.json",
                run={
                    "name": "repro-fabric",
                    "scheme": args.scheme,
                    "N": args.N,
                    "seed": args.seed,
                    "workers": args.workers,
                },
            )
            write_events_jsonl(registry, f"{args.telemetry}/events.jsonl")
            write_prometheus(registry, f"{args.telemetry}/metrics.prom")
    elapsed = time.perf_counter() - started

    if args.json:
        print(json.dumps(report.records, indent=2, default=str))
    elif not args.quiet:
        from repro.analysis.tables import render_table

        print(
            render_table(
                report.records,
                title=(
                    f"Simulated bandwidth, {args.scheme} scheme, "
                    f"N={args.N} ({args.workers} fabric workers)"
                ),
            )
        )
    busy = sum(
        t["busy_seconds"] for t in report.worker_timings.values()
    )
    print(
        f"fabric: {report.cells} cells on {report.n_workers} workers "
        f"(arity {report.arity}) in {elapsed:.2f}s; "
        f"{len(report.shard_map)} shards, {report.retries} retries, "
        f"{len(report.worker_deaths)} deaths, "
        f"{report.cache_hits} cache hits, busy {busy:.2f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
