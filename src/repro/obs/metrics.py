"""Process-wide metrics: counters, gauges, histograms, timers, events.

The registry is the single sink every instrumented hot path writes to —
the pmf cache, both simulation backends, the batched analytic engine,
the sweep drivers and the parallel executor.  Telemetry is *opt-in*:
the process starts with the :data:`NULL_REGISTRY` installed, whose
mutation methods are all no-ops, so disabled telemetry costs one
attribute lookup and one no-op call per instrumentation point (the
analytic benchmark guards this).  :func:`enable_telemetry` swaps in a
live :class:`MetricsRegistry`; :func:`telemetry` does so for the
duration of a ``with`` block.

Metrics are keyed by ``(name, labels)`` where labels are keyword
arguments (``registry.increment("analysis.cells_skipped",
scheme="partial", reason="group_divides_buses")``), mirroring the
Prometheus data model so the text exporter is a straight dump.  Events
(:meth:`MetricsRegistry.record_event`) are ordered dicts with a
monotonic sequence number and *no wall-clock timestamp* — the JSON-lines
event log and the run manifests stay diffable across runs.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "telemetry",
]

#: Metric key: ``(name, (("label", "value"), ...))`` with sorted labels.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


@dataclasses.dataclass
class HistogramSummary:
    """Streaming summary of observed values (count/sum/min/max)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _Timer:
    """Context manager recording a wall-clock duration into a histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict):
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe(
            self._name, time.perf_counter() - self._start, **self._labels
        )


class _NoopTimer:
    """Shared do-nothing timer handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_TIMER = _NoopTimer()


class MetricsRegistry:
    """Thread-safe store of counters, gauges, histograms and events.

    All mutation methods accept keyword labels; ``(name, labels)`` pairs
    identify one time series, exactly as in Prometheus.  Snapshots
    (:meth:`counters`, :meth:`gauges`, :meth:`histograms`,
    :meth:`events`) return plain copies safe to hold across further
    mutation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, HistogramSummary] = {}
        self._events: list[dict[str, object]] = []
        self._seq = 0

    # -- mutation ------------------------------------------------------

    def increment(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to the counter ``(name, labels)``."""
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``(name, labels)`` to ``value``."""
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Fold ``value`` into the histogram ``(name, labels)``."""
        key = _key(name, labels)
        with self._lock:
            summary = self._histograms.get(key)
            if summary is None:
                summary = self._histograms[key] = HistogramSummary()
            summary.observe(float(value))

    def time_block(self, name: str, **labels) -> _Timer:
        """Context manager timing its block into histogram ``name``.

        >>> registry = MetricsRegistry()
        >>> with registry.time_block("demo.seconds", stage="warm"):
        ...     pass
        >>> registry.histograms()[("demo.seconds", (("stage", "warm"),))].count
        1
        """
        return _Timer(self, name, labels)

    def record_event(self, kind: str, **fields) -> None:
        """Append an ordered event (no timestamp — sequence number only)."""
        with self._lock:
            self._seq += 1
            self._events.append({"seq": self._seq, "kind": kind, **fields})

    # -- snapshots -----------------------------------------------------

    def counters(self) -> dict[MetricKey, float]:
        """Copy of every counter series."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[MetricKey, float]:
        """Copy of every gauge series."""
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[MetricKey, HistogramSummary]:
        """Copy of every histogram series (summaries are copied too)."""
        with self._lock:
            return {
                key: dataclasses.replace(summary)
                for key, summary in self._histograms.items()
            }

    def events(self) -> list[dict[str, object]]:
        """Copy of the ordered event log."""
        with self._lock:
            return [dict(event) for event in self._events]

    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0 when never touched)."""
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label combinations."""
        with self._lock:
            return sum(
                value
                for (metric, _), value in self._counters.items()
                if metric == name
            )

    def clear(self) -> None:
        """Drop every metric and event."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._events.clear()
            self._seq = 0


class NullRegistry(MetricsRegistry):
    """A registry whose mutation methods do nothing.

    Installed while telemetry is disabled (the default), so hot paths
    can call the registry unconditionally; snapshots are always empty.
    """

    def increment(self, name: str, value: float = 1, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def time_block(self, name: str, **labels) -> _NoopTimer:
        return _NOOP_TIMER

    def record_event(self, kind: str, **fields) -> None:
        pass


#: The process-wide disabled-telemetry sink.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY
_swap_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The active registry (:data:`NULL_REGISTRY` while disabled)."""
    return _active


def telemetry_enabled() -> bool:
    """True when a live (non-null) registry is installed."""
    return _active is not NULL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide sink; return the old one."""
    global _active
    with _swap_lock:
        previous = _active
        _active = registry
    return previous


def enable_telemetry(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) a live registry — a fresh one by default."""
    if registry is None:
        registry = MetricsRegistry()
    set_registry(registry)
    return registry


def disable_telemetry() -> None:
    """Restore the no-op :data:`NULL_REGISTRY`."""
    set_registry(NULL_REGISTRY)


@contextmanager
def telemetry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable telemetry for a ``with`` block, restoring the prior sink.

    >>> from repro.obs import telemetry
    >>> with telemetry() as registry:
    ...     registry.increment("demo.count")
    >>> registry.counter_value("demo.count")
    1
    """
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
