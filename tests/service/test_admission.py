"""Token-bucket admission, queue-depth shedding and retry-hint plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import AdmissionError, ConfigurationError
from repro.obs import telemetry
from repro.resilience import RetryPolicy
from repro.service import AdmissionController, TokenBucket


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_burst_then_deterministic_hint():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=4.0, burst=2, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    # bucket empty: the hint is exactly the time until the next token
    assert bucket.try_acquire() == pytest.approx(0.25)
    assert bucket.tokens == 0.0


def test_waiting_the_hint_admits():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=4.0, burst=1, clock=clock)
    assert bucket.try_acquire() == 0.0
    hint = bucket.try_acquire()
    assert hint > 0.0
    clock.advance(hint)
    assert bucket.try_acquire() == 0.0


def test_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=10.0, burst=3, clock=clock)
    for _ in range(3):
        assert bucket.try_acquire() == 0.0
    clock.advance(100.0)
    assert bucket.tokens == 3.0


def test_partial_refill_accrues_continuously():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=2.0, burst=1, clock=clock)
    bucket.try_acquire()
    clock.advance(0.25)  # half a token
    assert bucket.tokens == pytest.approx(0.5)
    assert bucket.try_acquire() == pytest.approx(0.25)


@pytest.mark.parametrize("kwargs", [
    {"rate_per_second": 0.0, "burst": 1},
    {"rate_per_second": -1.0, "burst": 1},
    {"rate_per_second": 1.0, "burst": 0},
])
def test_bucket_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigurationError):
        TokenBucket(**kwargs)


def test_controller_rejects_bad_depth():
    with pytest.raises(ConfigurationError):
        AdmissionController(max_queue_depth=0)


def test_rate_shed_carries_hint_and_reason():
    clock = FakeClock()
    controller = AdmissionController(
        TokenBucket(rate_per_second=2.0, burst=1, clock=clock)
    )
    controller.admit()
    with telemetry() as registry:
        with pytest.raises(AdmissionError) as err:
            controller.admit()
    assert err.value.reason == "rate"
    assert err.value.retry_after_seconds == pytest.approx(0.5)
    assert registry.counters()[("service.shed", (("reason", "rate"),))] == 1


def test_depth_shed_wins_over_available_tokens():
    clock = FakeClock()
    controller = AdmissionController(
        TokenBucket(rate_per_second=2.0, burst=8, clock=clock),
        max_queue_depth=4,
    )
    with pytest.raises(AdmissionError) as err:
        controller.admit(queue_depth=4)
    assert err.value.reason == "queue_depth"
    assert err.value.retry_after_seconds == pytest.approx(0.5)  # 1/rate
    # tokens untouched: a depth shed must not burn rate budget
    controller.admit(queue_depth=0)


def test_depth_shed_without_bucket_uses_default_hint():
    controller = AdmissionController(max_queue_depth=1)
    with pytest.raises(AdmissionError) as err:
        controller.admit(queue_depth=1)
    assert err.value.retry_after_seconds > 0.0


def test_no_gates_admits_everything():
    controller = AdmissionController()
    for depth in (0, 10, 10_000):
        controller.admit(queue_depth=depth)


# ----------------------------------------------------------------------
# Client-side: RetryPolicy honors the server's hint
# ----------------------------------------------------------------------


def test_delay_honoring_takes_the_max():
    policy = RetryPolicy(max_attempts=5)
    for attempt in range(1, 4):
        base = policy.delay(attempt)
        assert policy.delay_honoring(attempt, retry_after=0.0) == base
        assert policy.delay_honoring(attempt, retry_after=base + 1) == (
            base + 1
        )
        assert policy.delay_honoring(attempt, retry_after=base / 2) == base


def test_delay_honoring_rejects_negative_hint():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=2).delay_honoring(1, retry_after=-0.1)


def test_delay_honoring_folds_admission_error_hint():
    exc = AdmissionError("shed", retry_after_seconds=9.5, reason="rate")
    policy = RetryPolicy(max_attempts=2)
    assert policy.delay_honoring(
        1, retry_after=exc.retry_after_seconds
    ) >= 9.5
