"""Convenience constructors for the network zoo.

Experiments and examples frequently build "the paper's standard instance"
of each scheme for a given ``(N, M, B)``; this module centralizes those
defaults so they stay consistent across analytics, simulation and
benchmarks:

* single connection: balanced ``M/B`` modules per bus (Section IV),
* partial: ``g = 2`` groups (the configuration of Table V),
* K classes: ``K = B`` equal classes of ``M/K`` modules (Table VI).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.topology.crossbar import CrossbarNetwork
from repro.topology.full import FullBusMemoryNetwork
from repro.topology.kclass import KClassPartialBusNetwork
from repro.topology.network import MultipleBusNetwork
from repro.topology.partial import PartialBusNetwork
from repro.topology.single import SingleBusMemoryNetwork
from repro.topology.structure import StructureNetwork

__all__ = ["build_network", "equal_class_sizes", "paper_figure_networks"]

#: Keyword arguments each scheme accepts; anything else is a typed error.
_SCHEME_KWARGS: dict[str, frozenset] = {
    "full": frozenset(),
    "single": frozenset({"bus_of_module"}),
    "partial": frozenset({"n_groups"}),
    "kclass": frozenset({"class_sizes", "class_of_module"}),
    "crossbar": frozenset(),
    "custom": frozenset({"generator"}),
}


def _strict_int(value, name: str) -> int:
    """Validate an integral parameter without silent coercion.

    ``bool`` and floats are rejected (``int(2.7)`` would silently
    truncate); NumPy integer scalars pass through ``__index__``.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    try:
        return int(value.__index__())
    except (AttributeError, TypeError):
        raise ConfigurationError(
            f"{name} must be an integer, got {type(value).__name__} {value!r}"
        ) from None


def _strict_int_sequence(value, name: str):
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ConfigurationError(
            f"{name} must be a sequence of integers, got {value!r}"
        )
    return [_strict_int(item, f"{name}[{index}]") for index, item in enumerate(value)]


def equal_class_sizes(n_memories: int, n_classes: int) -> list[int]:
    """Split ``M`` modules into ``K`` classes as evenly as possible.

    When ``K`` divides ``M`` this is the paper's Table VI configuration;
    otherwise remainders go to the *higher* classes (better-connected),
    following the paper's principle that hot modules deserve more buses.
    """
    if n_classes < 1:
        raise ConfigurationError(f"need at least one class, got {n_classes}")
    base, extra = divmod(n_memories, n_classes)
    # Higher classes (larger j) receive the remainder.
    return [
        base + (1 if j >= n_classes - extra else 0) for j in range(n_classes)
    ]


def build_network(
    scheme: str,
    n_processors: int,
    n_memories: int,
    n_buses: int,
    **kwargs,
) -> MultipleBusNetwork:
    """Build a network by scheme name with the paper's default parameters.

    Parameters
    ----------
    scheme:
        ``"full"``, ``"single"``, ``"partial"``, ``"kclass"``,
        ``"crossbar"`` or ``"custom"``.
    kwargs:
        Scheme-specific overrides: ``bus_of_module`` (single),
        ``n_groups`` (partial, default 2), ``class_sizes`` and
        ``class_of_module`` (kclass, default ``K = B`` equal classes),
        ``generator`` (custom: a generator spec, see
        :mod:`repro.topology.generators`).

    Every parameter is strictly validated: unknown keyword arguments and
    non-integral spellings (floats, booleans) raise a typed
    :class:`ConfigurationError` instead of being silently coerced.
    """
    allowed = _SCHEME_KWARGS.get(scheme)
    if allowed is None:
        raise ConfigurationError(
            f"unknown scheme {scheme!r}; expected full/single/partial/"
            "kclass/crossbar/custom"
        )
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        if allowed:
            hint = f"allowed: {sorted(allowed)}"
        else:
            hint = "this scheme takes no extra parameters"
        raise ConfigurationError(
            f"unknown parameter(s) {unknown} for scheme {scheme!r}; {hint}"
        )
    n_processors = _strict_int(n_processors, "number of processors")
    n_memories = _strict_int(n_memories, "number of memory modules")
    n_buses = _strict_int(n_buses, "number of buses")
    if scheme == "full":
        return FullBusMemoryNetwork(n_processors, n_memories, n_buses)
    if scheme == "single":
        if "bus_of_module" in kwargs:
            kwargs["bus_of_module"] = _strict_int_sequence(
                kwargs["bus_of_module"], "bus_of_module"
            )
        return SingleBusMemoryNetwork(n_processors, n_memories, n_buses, **kwargs)
    if scheme == "partial":
        n_groups = kwargs.get("n_groups", 2)
        return PartialBusNetwork(
            n_processors,
            n_memories,
            n_buses,
            n_groups=_strict_int(n_groups, "n_groups"),
        )
    if scheme == "kclass":
        if "class_sizes" in kwargs:
            kwargs["class_sizes"] = _strict_int_sequence(
                kwargs["class_sizes"], "class_sizes"
            )
        else:
            kwargs["class_sizes"] = equal_class_sizes(n_memories, n_buses)
        if "class_of_module" in kwargs:
            kwargs["class_of_module"] = _strict_int_sequence(
                kwargs["class_of_module"], "class_of_module"
            )
        return KClassPartialBusNetwork(
            n_processors, n_memories, n_buses, **kwargs
        )
    if scheme == "crossbar":
        return CrossbarNetwork(n_processors, n_memories)
    # scheme == "custom"
    if "generator" not in kwargs:
        raise ConfigurationError(
            "scheme 'custom' requires a 'generator' spec "
            "(see repro.topology.generators)"
        )
    from repro.topology.generators import generate_structure

    structure = generate_structure(
        kwargs["generator"], n_processors, n_memories, n_buses
    )
    return StructureNetwork(structure)


def paper_figure_networks() -> dict[str, MultipleBusNetwork]:
    """Return the four concrete topologies drawn in the paper's figures.

    Figures 1, 2 and 4 are generic ``N x M x B`` sketches — we instantiate
    them at ``8 x 8 x 4``; Figure 3 is the concrete ``3 x 6 x 4`` partial
    bus network with three classes.
    """
    return {
        "fig1_full": FullBusMemoryNetwork(8, 8, 4),
        "fig2_partial_g2": PartialBusNetwork(8, 8, 4, n_groups=2),
        "fig3_kclass_3x6x4": KClassPartialBusNetwork(
            3, 6, 4, class_sizes=[2, 2, 2]
        ),
        "fig4_single": SingleBusMemoryNetwork(8, 8, 4),
    }
