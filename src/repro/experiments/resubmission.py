"""E12 — blocked-request resubmission vs the paper's drop model.

The paper's assumption 5 drops blocked requests; the Markov-model
literature it cites ([11]-[13]) holds and retries them.  This experiment
quantifies the difference on the paper's standard machine: for a sweep
of nominal request rates it reports the drop-model bandwidth (the
paper's eq. 4), the rate-adjusted analytic resubmission prediction, and
the event-level resubmission simulation — including the effective
submission rate and queueing delay the drop model cannot express.

Each rate simulates under its own :class:`~numpy.random.SeedSequence`
child spawned by sweep index from the experiment seed, so the records
are identical for any ``n_workers``.
"""

from __future__ import annotations

from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.parallel import parallel_map, spawn_seeds
from repro.analysis.tables import render_table
from repro.core.hierarchy import paper_two_level_model
from repro.core.resubmission import solve_resubmission_equilibrium
from repro.experiments.base import ExperimentResult
from repro.simulation.resubmission import ResubmissionSimulator
from repro.topology.factory import build_network

__all__ = ["run"]

_RATES = (0.2, 0.4, 0.6, 0.8, 1.0)


def _resubmission_cell(spec: dict) -> dict[str, object]:
    """Worker: one rate of the sweep (module-level, picklable)."""
    network = build_network(
        "full", spec["N"], spec["N"], spec["B"]
    )
    model = paper_two_level_model(spec["N"], rate=spec["r"])
    drop = analytic_bandwidth(network, model)
    equilibrium = solve_resubmission_equilibrium(
        model, lambda m: analytic_bandwidth(network, m)
    )
    simulated = ResubmissionSimulator(network, model, seed=spec["seed"]).run(
        spec["n_cycles"]
    )
    return {
        "r": spec["r"],
        "drop MBW (paper)": round(drop, 3),
        "resub MBW analytic": round(equilibrium.bandwidth, 3),
        "resub MBW simulated": round(simulated.bandwidth, 3),
        "alpha analytic": round(equilibrium.effective_rate, 3),
        "alpha simulated": round(simulated.effective_rate, 3),
        "wait analytic": round(equilibrium.mean_wait_cycles, 2),
        "wait simulated": round(simulated.mean_wait_cycles, 2),
    }


def run(
    n_processors: int = 16,
    n_buses: int = 4,
    n_cycles: int = 15_000,
    seed: int = 5,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Sweep nominal rates on a full connection network."""
    cells = [
        {"N": n_processors, "B": n_buses, "r": rate, "n_cycles": n_cycles}
        for rate in _RATES
    ]
    for cell, cell_seed in zip(cells, spawn_seeds(seed, len(cells))):
        cell["seed"] = cell_seed
    records = parallel_map(_resubmission_cell, cells, n_workers=n_workers)
    rendered = render_table(
        records,
        title=(
            f"Drop model vs resubmission on a {n_processors}x"
            f"{n_processors}x{n_buses} full connection network "
            "(hierarchical model; alpha = effective submission rate, "
            "wait in cycles)"
        ),
    )
    return ExperimentResult(
        experiment_id="resubmission",
        title="E12: relaxing assumption 5 — blocked-request resubmission",
        records=records,
        rendered=rendered,
        comparisons=[],
    )
