"""Tests for capacity-planning utilities."""

import pytest

from repro.analysis.capacity import (
    bus_utilization_profile,
    min_buses_for_bandwidth,
    min_buses_for_crossbar_fraction,
    rate_for_crossbar_fraction,
)
from repro.analysis.evaluate import analytic_bandwidth
from repro.core.hierarchy import paper_two_level_model
from repro.core.request_models import UniformRequestModel
from repro.exceptions import ConfigurationError
from repro.topology import FullBusMemoryNetwork


class TestMinBusesForBandwidth:
    def test_basic(self):
        model = UniformRequestModel(8, 8)
        b = min_buses_for_bandwidth("full", 8, model, 3.5)
        assert b == 4  # Table II: B=3 -> 2.97, B=4 -> 3.87

    def test_returns_minimum(self):
        model = UniformRequestModel(8, 8)
        b = min_buses_for_bandwidth("full", 8, model, 3.5)
        below = analytic_bandwidth(FullBusMemoryNetwork(8, 8, b - 1), model)
        assert below < 3.5

    def test_unreachable_target(self):
        model = UniformRequestModel(8, 8)
        assert min_buses_for_bandwidth("full", 8, model, 7.0) is None

    def test_skips_invalid_counts(self):
        model = UniformRequestModel(8, 8)
        # g=2 partial only exists for even B; target forces B=4.
        b = min_buses_for_bandwidth("partial", 8, model, 3.0, n_groups=2)
        assert b == 4

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            min_buses_for_bandwidth("full", 8, UniformRequestModel(8, 8), 0.0)


class TestMinBusesForCrossbarFraction:
    def test_paper_r1_needs_half_the_buses(self):
        # Section IV: at r = 1 the network needs ~N/2 buses to approach
        # the crossbar.
        model = paper_two_level_model(16, rate=1.0)
        b = min_buses_for_crossbar_fraction("full", 16, model, 0.95)
        assert 8 <= b <= 12

    def test_r_half_needs_fewer(self):
        model_r1 = paper_two_level_model(16, rate=1.0)
        model_r05 = paper_two_level_model(16, rate=0.5)
        b1 = min_buses_for_crossbar_fraction("full", 16, model_r1, 0.95)
        b05 = min_buses_for_crossbar_fraction("full", 16, model_r05, 0.95)
        assert b05 < b1

    def test_full_fraction_needs_all(self):
        model = UniformRequestModel(8, 8)
        b = min_buses_for_crossbar_fraction("full", 8, model, 1.0)
        assert b is not None and b >= 7

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            min_buses_for_crossbar_fraction(
                "full", 8, UniformRequestModel(8, 8), 1.5
            )


class TestRateForCrossbarFraction:
    def test_paper_observation(self):
        # N/2 buses reach >= 95% of the crossbar somewhere below r = 1
        # but above r = 0.4 (Table III shows 6.52/6.87 = 0.95 at r=0.5).
        model = paper_two_level_model(16, rate=1.0)
        rate = rate_for_crossbar_fraction("full", 16, 8, model, 0.95)
        assert rate is not None
        assert 0.4 < rate < 1.0

    def test_full_pool_supports_rate_one(self):
        model = UniformRequestModel(8, 8)
        assert rate_for_crossbar_fraction("full", 8, 8, model, 0.99) == 1.0

    def test_monotone_in_buses(self):
        model = paper_two_level_model(16, rate=1.0)
        r4 = rate_for_crossbar_fraction("full", 16, 4, model, 0.95)
        r8 = rate_for_crossbar_fraction("full", 16, 8, model, 0.95)
        assert r4 < r8

    def test_invalid_bus_count_raises(self):
        model = UniformRequestModel(8, 8)
        with pytest.raises(ConfigurationError, match="cannot be built"):
            rate_for_crossbar_fraction(
                "partial", 8, 3, model, 0.9, n_groups=2
            )


class TestBusUtilizationProfile:
    def test_profile_shape(self):
        model = UniformRequestModel(8, 8)
        profile = bus_utilization_profile("full", 8, model)
        assert [p["B"] for p in profile] == list(range(1, 9))

    def test_bandwidth_recovered(self):
        model = UniformRequestModel(8, 8)
        profile = bus_utilization_profile("full", 8, model)
        assert profile[3]["bandwidth"] == pytest.approx(
            analytic_bandwidth(FullBusMemoryNetwork(8, 8, 4), model)
        )

    def test_marginal_sums_to_total(self):
        model = UniformRequestModel(8, 8)
        profile = bus_utilization_profile("full", 8, model)
        total = sum(p["marginal"] for p in profile)
        assert total == pytest.approx(profile[-1]["bandwidth"])

    def test_diminishing_returns(self):
        model = UniformRequestModel(8, 8)
        profile = bus_utilization_profile("full", 8, model)
        marginals = [p["marginal"] for p in profile]
        assert all(a >= b - 1e-9 for a, b in zip(marginals, marginals[1:]))

    def test_per_bus_yield_decreases(self):
        model = UniformRequestModel(16, 16, rate=0.5)
        profile = bus_utilization_profile("full", 16, model)
        yields = [p["per_bus"] for p in profile]
        assert yields[-1] < yields[0]

    def test_partial_skips_odd_counts(self):
        model = UniformRequestModel(8, 8)
        profile = bus_utilization_profile(
            "partial", 8, model, n_groups=2
        )
        assert [p["B"] for p in profile] == [2, 4, 6, 8]
