"""Differential test: loop vs vectorized backends on degraded topologies.

A fault-degraded network is not vectorizable, so ``backend="auto"``
silently drops to the per-cycle loop with the generic maximum-matching
arbiter.  These tests pin down that the fallback is (a) taken and logged
through telemetry, and (b) *correct*, by exploiting a structural
identity: zeroing a bus column is equivalent to removing the bus, so

* a full bus-memory network with ``f`` failed buses must grant exactly
  like a healthy ``B - f``-bus full network (every module still reaches
  every surviving bus), which the vectorized backend can simulate; and
* a partial network with one failed bus per group must grant exactly
  like the healthy partial network with ``B - g`` buses.

Both sides share one seed.  Request generation and arbitration RNG
streams are derived separately (``derive_streams``), so the per-cycle
request patterns are bit-identical across backends and topologies of the
same ``(N, M)`` — any grant-count divergence is an arbitration bug, not
noise.
"""

from __future__ import annotations

import pytest

from repro.core.request_models import UniformRequestModel
from repro.faults import fail_buses
from repro.obs import telemetry
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology.factory import build_network

N = 8
CYCLES = 1000
SEEDS = (404, 2024)


def _grants(network, backend, seed):
    model = UniformRequestModel(
        network.n_processors, network.n_memories, rate=0.8
    )
    simulator = MultiprocessorSimulator(
        network, model, seed=seed, backend=backend
    )
    result = simulator.run(CYCLES)
    return simulator.backend, result.grant_counts


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n_failed", [1, 2])
def test_degraded_full_equals_smaller_healthy_full(seed, n_failed):
    n_buses = 4
    degraded = fail_buses(
        build_network("full", N, N, n_buses), range(n_failed)
    )
    healthy = build_network("full", N, N, n_buses - n_failed)

    loop_backend, loop_grants = _grants(degraded, "auto", seed)
    vec_backend, vec_grants = _grants(healthy, "vectorized", seed)

    assert loop_backend == "loop"  # auto fell back on the degraded topology
    assert vec_backend == "vectorized"
    assert loop_grants == vec_grants


@pytest.mark.parametrize("seed", SEEDS)
def test_degraded_partial_equals_smaller_healthy_partial(seed):
    # g = 2 groups over B = 4: buses {0, 1} and {2, 3}.  Failing one bus
    # per group leaves the healthy B = 2 partial network.
    degraded = fail_buses(
        build_network("partial", N, N, 4, n_groups=2), [0, 2]
    )
    healthy = build_network("partial", N, N, 2, n_groups=2)

    loop_backend, loop_grants = _grants(degraded, "auto", seed)
    vec_backend, vec_grants = _grants(healthy, "vectorized", seed)

    assert loop_backend == "loop"
    assert vec_backend == "vectorized"
    assert loop_grants == vec_grants


def test_loop_and_vectorized_agree_on_the_healthy_counterpart():
    """Sanity anchor: the two backends agree on the healthy network too."""
    healthy = build_network("full", N, N, 3)
    _, loop_grants = _grants(healthy, "loop", SEEDS[0])
    _, vec_grants = _grants(healthy, "vectorized", SEEDS[0])
    assert loop_grants == vec_grants


def test_auto_fallback_is_taken_and_reported_via_telemetry():
    degraded = fail_buses(build_network("full", N, N, 4), [1])
    model = UniformRequestModel(N, N, rate=0.8)
    with telemetry() as registry:
        simulator = MultiprocessorSimulator(
            degraded, model, seed=SEEDS[0], backend="auto"
        )
        assert simulator.backend == "loop"
        simulator.run(200)

        selected = [
            e for e in registry.events()
            if e["kind"] == "sim.backend_selected"
        ]
        assert len(selected) == 1
        assert selected[0]["requested"] == "auto"
        assert selected[0]["backend"] == "loop"
        assert selected[0]["scheme"] == "degraded"

        fallbacks = [
            e for e in registry.events()
            if e["kind"] == "sim.backend_fallback"
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0]["scheme"] == "degraded"
        assert isinstance(fallbacks[0]["reason"], str)
        assert fallbacks[0]["reason"]

        assert registry.counter_value("sim.backend", backend="loop") == 1
        assert registry.counter_value("sim.cycles", backend="loop") == 200
