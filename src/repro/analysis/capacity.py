"""Capacity planning: sizing bus pools from the closed forms.

Section IV's engineering takeaways — "the network should have at least
N/2 buses when r = 1", "when r = 0.5, N/2 buses perform close to the
crossbar" — generalized into planning utilities:

* :func:`min_buses_for_bandwidth` — smallest bus pool meeting a target.
* :func:`min_buses_for_crossbar_fraction` — smallest bus pool within a
  given fraction of the crossbar's bandwidth.
* :func:`rate_for_crossbar_fraction` — the request rate below which a
  given bus pool is effectively crossbar-equivalent (the paper's r = 0.5
  observation, made precise by bisection).
* :func:`bus_utilization_profile` — marginal value of each added bus.
"""

from __future__ import annotations

from repro.analysis.batch import scheme_bus_profile
from repro.core.bandwidth import bandwidth_crossbar
from repro.core.request_models import RequestModel
from repro.exceptions import ConfigurationError

__all__ = [
    "min_buses_for_bandwidth",
    "min_buses_for_crossbar_fraction",
    "rate_for_crossbar_fraction",
    "bus_utilization_profile",
]


def _scheme_bandwidth(
    scheme: str, n: int, b: int, model: RequestModel, **kwargs
) -> float | None:
    values = _scheme_profile(scheme, n, [b], model, **kwargs)
    return values.get(b)


def _scheme_profile(
    scheme: str, n: int, bus_counts, model: RequestModel, **kwargs
) -> dict[int, float]:
    """Feasible-``B`` bandwidth map from the batched analytic engine.

    One cached pmf and one whole-grid kernel cover every candidate bus
    count, instead of a network build plus pmf recompute per count.
    """
    return scheme_bus_profile(
        scheme, n, model.n_memories, list(bus_counts), model, **kwargs
    ).values


def min_buses_for_bandwidth(
    scheme: str,
    n_processors: int,
    model: RequestModel,
    target: float,
    **network_kwargs,
) -> int | None:
    """Smallest ``B`` whose bandwidth meets ``target``; None if none does.

    Bandwidth is non-decreasing in ``B`` for every scheme, so a linear
    scan from below returns the minimum.  Bus counts structurally invalid
    for the scheme (e.g. odd ``B`` with ``g = 2``) are skipped.
    """
    if target <= 0.0:
        raise ConfigurationError(f"target bandwidth must be > 0: {target}")
    values = _scheme_profile(
        scheme, n_processors, range(1, model.n_memories + 1), model,
        **network_kwargs,
    )
    for b in sorted(values):
        if values[b] >= target - 1e-12:
            return b
    return None


def min_buses_for_crossbar_fraction(
    scheme: str,
    n_processors: int,
    model: RequestModel,
    fraction: float = 0.95,
    **network_kwargs,
) -> int | None:
    """Smallest ``B`` achieving ``fraction`` of the crossbar bandwidth."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1]: {fraction}")
    x = model.symmetric_module_probability()
    ceiling = bandwidth_crossbar(model.n_memories, x)
    return min_buses_for_bandwidth(
        scheme, n_processors, model, fraction * ceiling, **network_kwargs
    )


def rate_for_crossbar_fraction(
    scheme: str,
    n_processors: int,
    n_buses: int,
    model: RequestModel,
    fraction: float = 0.95,
    tolerance: float = 1e-6,
    **network_kwargs,
) -> float | None:
    """Largest rate ``r`` at which ``B`` buses reach ``fraction`` of the
    crossbar, found by bisection.

    Below the returned rate the bus pool is effectively crossbar-
    equivalent; above it, bus contention bites.  Returns 1.0 when even
    ``r = 1`` meets the fraction, and ``None`` when no rate does (only
    possible for pathological fractions, since both sides vanish
    together as ``r -> 0``).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1]: {fraction}")

    def meets(rate: float) -> bool:
        scaled = model.with_rate(rate)
        value = _scheme_bandwidth(
            scheme, n_processors, n_buses, scaled, **network_kwargs
        )
        if value is None:
            raise ConfigurationError(
                f"scheme {scheme!r} cannot be built with B={n_buses}"
            )
        x = scaled.module_request_probabilities()
        ceiling = float(x.sum())
        if ceiling <= 0.0:
            return True
        return value >= fraction * ceiling - 1e-12

    if meets(1.0):
        return 1.0
    low, high = 0.0, 1.0  # meets(low) holds in the r->0 limit
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if mid == low or mid == high:
            break
        if meets(mid):
            low = mid
        else:
            high = mid
    return low if low > 0.0 else None


def bus_utilization_profile(
    scheme: str,
    n_processors: int,
    model: RequestModel,
    max_buses: int | None = None,
    **network_kwargs,
) -> list[dict[str, float]]:
    """Marginal bandwidth of each added bus.

    Returns one record per feasible bus count with the bandwidth, the
    gain over the previous feasible count, and the average per-bus yield
    — the quantity that collapses when a pool is oversized (the paper's
    "underutilized" observation for r = 0.5).
    """
    if max_buses is None:
        max_buses = model.n_memories
    values = _scheme_profile(
        scheme, n_processors, range(1, max_buses + 1), model,
        **network_kwargs,
    )
    profile: list[dict[str, float]] = []
    previous = 0.0
    for b in sorted(values):
        value = values[b]
        profile.append(
            {
                "B": b,
                "bandwidth": value,
                "marginal": value - previous,
                "per_bus": value / b,
            }
        )
        previous = value
    return profile
