"""Multiple bus network with full bus-memory connection (Fig. 1)."""

from __future__ import annotations

import numpy as np

from repro.topology.network import MultipleBusNetwork

__all__ = ["FullBusMemoryNetwork"]


class FullBusMemoryNetwork(MultipleBusNetwork):
    """Every processor and every memory module attaches to all ``B`` buses.

    The most expensive and most fault-tolerant scheme: ``B (N + M)``
    connections, per-bus load ``N + M``, and degree of fault tolerance
    ``B - 1`` (a single surviving bus keeps every module reachable).
    """

    scheme = "full"

    def memory_bus_matrix(self) -> np.ndarray:
        return np.ones((self.n_memories, self.n_buses), dtype=bool)
