"""repro — multiple bus interconnection network performance analysis.

A faithful, production-oriented reproduction of:

    Wen-Tsuen Chen and Jang-Ping Sheu,
    "Performance Analysis of Multiple Bus Interconnection Networks with
    Hierarchical Requesting Model", ICDCS 1988.

Quickstart::

    from repro import (
        FullBusMemoryNetwork, paper_two_level_model, analytic_bandwidth,
        simulate_bandwidth,
    )

    net = FullBusMemoryNetwork(16, 16, 8)
    model = paper_two_level_model(16, rate=1.0)
    print(analytic_bandwidth(net, model))      # closed form, eq. (4)
    print(simulate_bandwidth(net, model))      # Monte-Carlo cross-check

Package map:

* :mod:`repro.core` — request models (uniform / Das-Bhuyan favourite /
  hierarchical) and the closed-form bandwidth equations (1)-(12).
* :mod:`repro.topology` — the four bus-memory connection schemes plus the
  crossbar, with the Table I cost model.
* :mod:`repro.arbitration` — the two-stage arbitration substrate.
* :mod:`repro.simulation` — synchronous cycle-level Monte-Carlo simulator.
* :mod:`repro.workloads` — generators, traces, task-graph assignment.
* :mod:`repro.faults` — bus fault injection, stochastic fault/repair
  timelines, degraded-mode and availability-weighted bandwidth analysis.
* :mod:`repro.resilience` — retry policies for crash-tolerant execution.
* :mod:`repro.analysis` — sweeps, cross-scheme comparison, table rendering.
* :mod:`repro.experiments` — reproduction of every paper table and figure.
* :mod:`repro.obs` — opt-in telemetry: metrics registry, spans, run
  manifests.  Off by default with zero overhead.
* :mod:`repro.service` — the asyncio bandwidth-query service: result
  LRU, in-flight request coalescing, per-tick micro-batching into the
  whole-grid kernels, token-bucket admission control and an HTTP
  front-end (``repro-serve``).
* :mod:`repro.surfaces` — materialized bandwidth surfaces published in
  a versioned shared-memory arena: zero-copy tier-zero lookups for the
  service, hot-signature refresh, and arena attachment for sweep
  workers.
"""

from repro.analysis import (
    analytic_bandwidth,
    bandwidth_sweep,
    bandwidth_sweep_with_skips,
    bus_count_sweep,
    bus_count_sweep_with_skips,
    bus_utilization_profile,
    compare_schemes,
    min_buses_for_bandwidth,
    min_buses_for_crossbar_fraction,
    paper_model_pair,
    rate_for_crossbar_fraction,
    render_matrix,
    render_table,
    scheme_bus_profile,
    tail_excess_all_buses,
)
from repro.core import (
    FavoriteMemoryRequestModel,
    HierarchicalRequestModel,
    MatrixRequestModel,
    RequestModel,
    UniformRequestModel,
    bandwidth_crossbar,
    bandwidth_full,
    bandwidth_kclass,
    bandwidth_partial,
    bandwidth_single,
    exact_bandwidth,
    paper_two_level_model,
    pmf_cache,
    solve_resubmission_equilibrium,
)
from repro.exceptions import (
    AdmissionError,
    BreakerOpenError,
    ChaosError,
    ConfigurationError,
    DeadlineExceededError,
    ExperimentError,
    FaultError,
    ModelError,
    QueryTooLargeError,
    ReproError,
    RetryExhaustedError,
    ServiceError,
    ServiceStoppingError,
    SimulationError,
)
from repro.faults import (
    AvailabilityPoint,
    DegradedNetwork,
    ExponentialFaultProcess,
    FaultEvent,
    FaultSchedule,
    FaultySimulationResult,
    availability_curve,
    degradation_curve,
    expected_bandwidth_under_failures,
    fail_buses,
    scheme_availability_curves,
    simulate_with_faults,
    verify_fault_tolerance_degree,
)
from repro.obs import (
    MetricsRegistry,
    build_manifest,
    disable_telemetry,
    enable_telemetry,
    events_jsonl,
    get_registry,
    prometheus_text,
    span,
    telemetry,
    telemetry_enabled,
    write_manifest,
)
from repro.resilience import (
    BreakerPolicy,
    BrownoutGovernor,
    BrownoutPolicy,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    chaos_plan,
    retry_call,
)
from repro.service import (
    AdmissionController,
    BandwidthService,
    Query,
    QueryEngine,
    ServiceLimits,
    TokenBucket,
)
from repro.simulation import (
    MultiprocessorSimulator,
    ResubmissionSimulator,
    SimulationResult,
    simulate_bandwidth,
)
from repro.surfaces import (
    LocalArena,
    Surface,
    SurfaceArena,
    SurfaceRefresher,
    SurfaceSignature,
    SurfaceStore,
    default_rate_grid,
    materialize_surface,
    signature_of,
)
from repro.topology import (
    CrossbarNetwork,
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    MultipleBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
    build_network,
    cost_report,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "SimulationError",
    "FaultError",
    "ExperimentError",
    "RetryExhaustedError",
    "ServiceError",
    "QueryTooLargeError",
    "AdmissionError",
    "BreakerOpenError",
    "ChaosError",
    "DeadlineExceededError",
    "ServiceStoppingError",
    # request models
    "RequestModel",
    "MatrixRequestModel",
    "UniformRequestModel",
    "FavoriteMemoryRequestModel",
    "HierarchicalRequestModel",
    "paper_two_level_model",
    "paper_model_pair",
    # closed forms
    "bandwidth_full",
    "bandwidth_single",
    "bandwidth_partial",
    "bandwidth_kclass",
    "bandwidth_crossbar",
    "analytic_bandwidth",
    "exact_bandwidth",
    # topologies
    "MultipleBusNetwork",
    "FullBusMemoryNetwork",
    "SingleBusMemoryNetwork",
    "PartialBusNetwork",
    "KClassPartialBusNetwork",
    "CrossbarNetwork",
    "build_network",
    "cost_report",
    # simulation
    "MultiprocessorSimulator",
    "SimulationResult",
    "simulate_bandwidth",
    "ResubmissionSimulator",
    "solve_resubmission_equilibrium",
    # faults
    "DegradedNetwork",
    "fail_buses",
    "verify_fault_tolerance_degree",
    "degradation_curve",
    "FaultEvent",
    "FaultSchedule",
    "ExponentialFaultProcess",
    "FaultySimulationResult",
    "simulate_with_faults",
    "AvailabilityPoint",
    "expected_bandwidth_under_failures",
    "availability_curve",
    "scheme_availability_curves",
    # resilience
    "RetryPolicy",
    "retry_call",
    "Deadline",
    "BreakerPolicy",
    "CircuitBreaker",
    "BrownoutPolicy",
    "BrownoutGovernor",
    "FaultPlan",
    "FaultRule",
    "chaos_plan",
    # service
    "Query",
    "ServiceLimits",
    "QueryEngine",
    "TokenBucket",
    "AdmissionController",
    "BandwidthService",
    # surfaces
    "SurfaceSignature",
    "Surface",
    "SurfaceArena",
    "LocalArena",
    "SurfaceStore",
    "SurfaceRefresher",
    "signature_of",
    "default_rate_grid",
    "materialize_surface",
    # analysis
    "bandwidth_sweep",
    "bandwidth_sweep_with_skips",
    "bus_count_sweep",
    "bus_count_sweep_with_skips",
    "scheme_bus_profile",
    "tail_excess_all_buses",
    "pmf_cache",
    "compare_schemes",
    "render_table",
    "render_matrix",
    "min_buses_for_bandwidth",
    "min_buses_for_crossbar_fraction",
    "rate_for_crossbar_fraction",
    "bus_utilization_profile",
    # observability
    "MetricsRegistry",
    "get_registry",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry",
    "telemetry_enabled",
    "span",
    "events_jsonl",
    "prometheus_text",
    "build_manifest",
    "write_manifest",
]
