"""E11 — N x M networks under the hierarchical model (Section III-A).

The paper derives the N x M variant of the hierarchical requesting model
(``k'_n`` favourite modules per leaf subcluster) and states that "the
performance of the N x M networks can be obtained similarly from the
formulas derived in the case of N x N networks" — but prints no table.
This experiment produces that table: a three-level hierarchy on N = 16
processors with the memory pool swept through M in {8, 16, 32}, across
the full / partial / single schemes, plus internal consistency checks
(with ``B = M`` the full network must equal the crossbar bound
``M * X``, and the closed-form X must match the matrix path).
"""

from __future__ import annotations

from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.tables import render_matrix
from repro.core.bandwidth import bandwidth_crossbar
from repro.core.hierarchy import HierarchicalRequestModel
from repro.exceptions import ConfigurationError
from repro.experiments.base import CellComparison, ExperimentResult
from repro.topology.factory import build_network

__all__ = ["run", "nxm_model"]

#: Three-level processor hierarchy: 2 clusters x 2 subclusters x 4.
_BRANCHING = (2, 2, 4)
#: Aggregate traffic shares per separation level (favourites, same
#: subcluster, same cluster... wait: n=3 levels -> 3 separations).
_AGGREGATES = (0.5, 0.3, 0.2)
_SCHEMES = ("full", "partial", "single")
_BUS_COUNTS = (1, 2, 4, 8, 16, 32)


def nxm_model(
    memory_leaf_size: int, rate: float = 1.0
) -> HierarchicalRequestModel:
    """The experiment's N x M hierarchical model.

    ``N = 16`` processors in a (2, 2, 4) hierarchy; each leaf subcluster
    holds ``memory_leaf_size`` favourite modules, so
    ``M = 4 * memory_leaf_size``.
    """
    return HierarchicalRequestModel.from_aggregate_fractions(
        _BRANCHING,
        _AGGREGATES,
        rate=rate,
        memory_leaf_size=memory_leaf_size,
    )


def run() -> ExperimentResult:
    """Sweep M and B for the three schemes; verify consistency."""
    records: list[dict[str, object]] = []
    comparisons: list[CellComparison] = []
    panels: list[str] = []
    n = 16

    for rate in (1.0, 0.5):
        values: dict[tuple, float] = {}
        for leaf in (2, 4, 8):
            model = nxm_model(leaf, rate=rate)
            m = model.n_memories
            x = model.symmetric_module_probability()

            # Consistency: the closed-form X equals the matrix-path X.
            comparisons.append(
                CellComparison(
                    cell=f"X(M={m}, r={rate})",
                    computed=x,
                    paper=float(model.module_request_probabilities()[0]),
                )
            )
            # Consistency: full with B = M equals the crossbar bound M*X.
            full_at_m = analytic_bandwidth(
                build_network("full", n, m, m), model
            )
            comparisons.append(
                CellComparison(
                    cell=f"full(B=M={m}, r={rate}) == M*X",
                    computed=full_at_m,
                    paper=bandwidth_crossbar(m, x),
                )
            )

            for scheme in _SCHEMES:
                for b in _BUS_COUNTS:
                    if b > m:
                        continue
                    try:
                        network = build_network(scheme, n, m, b)
                    except ConfigurationError:
                        continue
                    value = analytic_bandwidth(network, model)
                    values[(b, f"M={m} {scheme}")] = value
                    records.append(
                        {
                            "scheme": scheme, "N": n, "M": m, "B": b,
                            "r": rate, "bandwidth": value,
                        }
                    )
        panels.append(
            render_matrix(
                [b for b in _BUS_COUNTS
                 if any(k[0] == b for k in values)],
                [f"M={m} {s}" for m in (8, 16, 32) for s in _SCHEMES],
                values,
                corner="B",
                title=(
                    f"N x M x B bandwidth, N=16, three-level hierarchy "
                    f"{_BRANCHING}, aggregates {_AGGREGATES}, r = {rate}"
                ),
            )
        )

    return ExperimentResult(
        experiment_id="nxm",
        title=(
            "E11: N x M networks under the hierarchical requesting model "
            "(the table the paper describes but does not print)"
        ),
        records=records,
        rendered="\n\n".join(panels),
        comparisons=comparisons,
    )
