"""E15 — criticality-aware arbitration: discipline x scheme x class mix.

The paper's arbiters are uniform round-robin (assumption 4) and a grant
occupies its bus for exactly one memory cycle.  This experiment crosses
every connection scheme with the four arbitration disciplines of
:mod:`repro.core.priority` — the paper's class-blind round-robin
(``rr``), strict priority, weighted round-robin, and the static
processor-ordered discipline in the spirit of the FCFS-vs-priority
comparison of arXiv 1004.3560 — under a two-class criticality mix and a
multi-cycle burst tenure, reporting per-class simulated bandwidth
alongside the analytic split of
:func:`repro.analysis.batch.priority_class_profile`, plus the per-class
acceptance, mean bus tenure, and starvation counters only the simulator
can see.

Structural experiment: the paper prints no priority numbers, so there
is nothing to compare against (``comparisons`` is empty).  The
degenerate configuration (one class, unit tenure) is pinned to the
paper's golden tables by ``tests/arbitration/test_priority_differential``
instead.
"""

from __future__ import annotations

from repro.analysis.batch import priority_class_profile
from repro.analysis.tables import render_table
from repro.core.priority import DISCIPLINES, ArbitrationSpec
from repro.core.request_models import UniformRequestModel
from repro.experiments.base import ExperimentResult
from repro.simulation import MultiprocessorSimulator
from repro.topology.factory import build_network

__all__ = ["run"]

_SCHEMES = ("crossbar", "full", "partial", "single", "kclass")


def run(
    n: int = 8,
    b: int = 4,
    rate: float = 1.0,
    class_weights: tuple[float, ...] = (0.25, 0.75),
    tenure: float = 2.0,
    n_cycles: int = 2_000,
    seed: int = 0,
) -> ExperimentResult:
    """Per-class bandwidth under every discipline for an ``N x N`` system.

    Class 0 (weight ``class_weights[0]``) is the most critical; every
    grant holds its bus for ``tenure`` cycles.  ``analytic`` is the
    approximation-layer split (strict-priority thinning, proportional
    otherwise); ``sim`` is the exact per-class Monte-Carlo bandwidth.
    """
    records: list[dict[str, object]] = []
    model = UniformRequestModel(n, n, rate=rate)
    for scheme in _SCHEMES:
        network = build_network(scheme, n, n, b)
        for discipline in DISCIPLINES:
            spec = ArbitrationSpec(
                discipline=discipline,
                class_weights=class_weights,
                tenure=tenure,
            )
            result = MultiprocessorSimulator(
                network, model, seed=seed, spec=spec
            ).run(n_cycles)
            analytic = priority_class_profile(
                scheme,
                n,
                n,
                network.n_buses,
                model,
                discipline=discipline,
                class_weights=class_weights,
                tenure=tenure,
            )
            for cls in range(spec.n_classes):
                records.append(
                    {
                        "scheme": scheme,
                        "discipline": discipline,
                        "class": cls,
                        "weight": class_weights[cls],
                        "sim": result.per_class_bandwidth[cls],
                        "analytic": analytic.per_class[cls],
                        "acceptance": result.per_class_acceptance[cls],
                        "tenure": result.per_class_mean_grant_latency[cls],
                        "starved": result.per_class_starved_cycles[cls],
                    }
                )
    rendered = render_table(
        records,
        title=(
            f"Per-class bandwidth by arbitration discipline (N = M = {n}, "
            f"B = {b}, r = {rate}, classes = {list(class_weights)}, "
            f"L = {tenure}; class 0 most critical, {n_cycles} cycles)"
        ),
    )
    return ExperimentResult(
        experiment_id="arbitration",
        title=(
            "E15: criticality-aware arbitration and burst tenure across "
            "schemes"
        ),
        records=records,
        rendered=rendered,
        comparisons=[],
    )
