"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one paper artifact (E1-E10 in
DESIGN.md) under ``pytest-benchmark`` timing, and *asserts* the
reproduction criterion so the benchmark suite doubles as an end-to-end
check.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def assert_reproduces(result):
    """Shared acceptance check for table/figure benchmarks."""
    __tracebackhide__ = True
    if not result.all_within_tolerance():
        lines = [
            f"{m.cell}: computed {m.computed:.4f} vs paper {m.paper:.4f}"
            for m in result.mismatches()
        ]
        pytest.fail(
            f"{result.experiment_id} missed the paper's printed values:\n"
            + "\n".join(lines)
        )


@pytest.fixture
def reproduces():
    return assert_reproduces
