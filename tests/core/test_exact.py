"""Tests for exact subset-enumeration bandwidth."""

import numpy as np
import pytest

from repro.analysis.evaluate import analytic_bandwidth
from repro.core.exact import (
    distinct_request_pmf,
    exact_bandwidth,
    requested_set_distribution,
)
from repro.core.hierarchy import paper_two_level_model
from repro.core.request_models import MatrixRequestModel, UniformRequestModel
from repro.exceptions import ConfigurationError
from repro.simulation.engine import simulate_bandwidth
from repro.topology import (
    CrossbarNetwork,
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
)


class TestRequestedSetDistribution:
    def test_sums_to_one(self):
        dist = requested_set_distribution(UniformRequestModel(4, 4))
        assert dist.sum() == pytest.approx(1.0)
        assert len(dist) == 16

    def test_rate_zero_is_empty_set(self):
        dist = requested_set_distribution(UniformRequestModel(4, 4, rate=0.0))
        assert dist[0] == pytest.approx(1.0)

    def test_deterministic_pattern(self):
        # Both processors always request module 0: set {0} w.p. 1.
        f = np.zeros((2, 3))
        f[:, 0] = 1.0
        dist = requested_set_distribution(MatrixRequestModel(f, rate=1.0))
        assert dist[0b001] == pytest.approx(1.0)

    def test_two_processor_uniform_by_hand(self):
        # N=2, M=2, r=1: P({0}) = P(both pick 0) = 1/4, P({0,1}) = 1/2.
        dist = requested_set_distribution(UniformRequestModel(2, 2))
        assert dist[0b00] == pytest.approx(0.0)
        assert dist[0b01] == pytest.approx(0.25)
        assert dist[0b10] == pytest.approx(0.25)
        assert dist[0b11] == pytest.approx(0.5)

    def test_independence_model_factorizes(self):
        # Identity pattern at rate x: modules independent Bernoulli(x).
        x = 0.3
        dist = requested_set_distribution(
            MatrixRequestModel(np.eye(3), rate=x)
        )
        for t in range(8):
            bits = bin(t).count("1")
            assert dist[t] == pytest.approx(x**bits * (1 - x) ** (3 - bits))

    def test_rejects_large_machines(self):
        with pytest.raises(ConfigurationError, match="at most 16"):
            requested_set_distribution(UniformRequestModel(4, 20))


class TestDistinctRequestPmf:
    def test_mean_equals_sum_of_x(self):
        model = paper_two_level_model(8)
        pmf = distinct_request_pmf(model)
        mean = float(np.arange(9) @ pmf)
        assert mean == pytest.approx(
            float(model.module_request_probabilities().sum())
        )

    def test_variance_below_binomial(self):
        # Negative correlation: the true count has smaller variance than
        # the paper's Binomial(M, X) approximation.
        model = paper_two_level_model(8)
        pmf = distinct_request_pmf(model)
        i = np.arange(9)
        mean = float(i @ pmf)
        var = float(((i - mean) ** 2) @ pmf)
        x = model.symmetric_module_probability()
        assert var < 8 * x * (1 - x)

    def test_support_bounded_by_processors(self):
        # 2 processors can request at most 2 distinct modules.
        pmf = distinct_request_pmf(UniformRequestModel(2, 6))
        assert pmf[3:].sum() == pytest.approx(0.0, abs=1e-12)


class TestExactBandwidth:
    @pytest.mark.parametrize(
        "network",
        [
            FullBusMemoryNetwork(8, 8, 4),
            SingleBusMemoryNetwork(8, 8, 4),
            PartialBusNetwork(8, 8, 4, 2),
            KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2]),
            CrossbarNetwork(8, 8),
        ],
        ids=lambda n: n.scheme,
    )
    def test_matches_simulation(self, network):
        model = paper_two_level_model(8, rate=1.0)
        exact = exact_bandwidth(network, model)
        sim = simulate_bandwidth(network, model, n_cycles=30_000, seed=11)
        assert sim.agrees_with(exact, slack=0.03), (
            f"{network.scheme}: exact {exact:.4f} vs {sim.summary()}"
        )

    def test_no_contention_matches_approximation(self):
        # B >= M: min(D, B) = D, so only the mean matters and the
        # binomial approximation becomes exact.
        model = paper_two_level_model(8)
        network = FullBusMemoryNetwork(8, 8, 8)
        assert exact_bandwidth(network, model) == pytest.approx(
            analytic_bandwidth(network, model), abs=1e-9
        )

    def test_exact_at_least_approximation(self):
        # Negative correlation only helps a concave serving function.
        model = paper_two_level_model(8)
        for scheme_net in (
            FullBusMemoryNetwork(8, 8, 4),
            SingleBusMemoryNetwork(8, 8, 4),
            PartialBusNetwork(8, 8, 4, 2),
            KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2]),
        ):
            assert exact_bandwidth(scheme_net, model) >= (
                analytic_bandwidth(scheme_net, model) - 1e-9
            )

    def test_independence_model_matches_formulas_exactly(self):
        # Under the independence workload the paper's formulas are exact
        # and so is the enumeration: they must agree to machine epsilon.
        x = 0.65
        model = MatrixRequestModel(np.eye(8), rate=x)
        for network in (
            FullBusMemoryNetwork(8, 8, 4),
            SingleBusMemoryNetwork(8, 8, 4),
            PartialBusNetwork(8, 8, 4, 2),
            KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2]),
        ):
            assert exact_bandwidth(network, model) == pytest.approx(
                analytic_bandwidth(network, model), abs=1e-12
            )

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ConfigurationError):
            exact_bandwidth(
                FullBusMemoryNetwork(8, 8, 4), UniformRequestModel(6, 8)
            )
        with pytest.raises(ConfigurationError):
            exact_bandwidth(
                FullBusMemoryNetwork(8, 8, 4), UniformRequestModel(8, 6)
            )
