"""Workload substrate: generators, traces, and task-assignment pipelines."""

from repro.workloads.assignment import (
    HierarchicalFit,
    TaskAssignment,
    assign_tasks_locality_aware,
    assign_tasks_round_robin,
    fit_hierarchical_fractions,
    induced_request_model,
)
from repro.workloads.generator import (
    FixedRequestGenerator,
    ModelRequestGenerator,
    RequestGenerator,
)
from repro.workloads.task_graph import TaskGraph, clustered_task_graph
from repro.workloads.traces import RequestTrace, record_trace

__all__ = [
    "RequestGenerator",
    "ModelRequestGenerator",
    "FixedRequestGenerator",
    "RequestTrace",
    "record_trace",
    "TaskGraph",
    "clustered_task_graph",
    "TaskAssignment",
    "assign_tasks_locality_aware",
    "assign_tasks_round_robin",
    "induced_request_model",
    "fit_hierarchical_fractions",
    "HierarchicalFit",
]
