"""Comparison, sweep and rendering utilities over the core analytics."""

from repro.analysis.batch import (
    BusProfile,
    GridCell,
    PriorityProfile,
    SkippedCell,
    bandwidth_full_batch,
    bandwidth_kclass_batch,
    bandwidth_partial_batch,
    bandwidth_single_batch,
    binomial_pmf_grid,
    evaluate_cells,
    priority_class_profile,
    scheme_bus_profile,
    tail_excess_all_buses,
    valid_bus_counts,
)
from repro.analysis.capacity import (
    bus_utilization_profile,
    min_buses_for_bandwidth,
    min_buses_for_crossbar_fraction,
    rate_for_crossbar_fraction,
)
from repro.analysis.compare import SchemeComparison, compare_schemes
from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.parallel import (
    ResultCache,
    parallel_map,
    simulated_bandwidth_sweep,
    spawn_seeds,
)
from repro.analysis.sweep import (
    SweepResult,
    bandwidth_sweep,
    bandwidth_sweep_with_skips,
    bus_count_sweep,
    bus_count_sweep_with_skips,
    paper_model_pair,
)
from repro.analysis.tables import render_matrix, render_table

__all__ = [
    "analytic_bandwidth",
    "bandwidth_sweep",
    "bandwidth_sweep_with_skips",
    "bus_count_sweep",
    "bus_count_sweep_with_skips",
    "SweepResult",
    "paper_model_pair",
    "simulated_bandwidth_sweep",
    "parallel_map",
    "spawn_seeds",
    "ResultCache",
    "compare_schemes",
    "SchemeComparison",
    "render_table",
    "render_matrix",
    "min_buses_for_bandwidth",
    "min_buses_for_crossbar_fraction",
    "rate_for_crossbar_fraction",
    "bus_utilization_profile",
    "tail_excess_all_buses",
    "binomial_pmf_grid",
    "bandwidth_full_batch",
    "bandwidth_partial_batch",
    "bandwidth_single_batch",
    "bandwidth_kclass_batch",
    "scheme_bus_profile",
    "PriorityProfile",
    "priority_class_profile",
    "valid_bus_counts",
    "BusProfile",
    "SkippedCell",
    "GridCell",
    "evaluate_cells",
]
