"""The fabric worker process: ``python -m repro.fabric.worker``.

A worker is one node of the fabric tree.  It is configured entirely by
the HELLO frame on stdin (node id, worker count, tree arity, codec,
heartbeat interval, and the :class:`~repro.fabric.jobs.FabricJob`), so
the command line is bare and the process is spawnable by either the
coordinator or another worker.

Tree shape: the coordinator is node ``0``; workers are nodes ``1..n``
in heap order, so node ``k``'s children are ``arity*k + 1 ..
arity*k + arity`` (capped at ``n``).  Each worker spawns its own
children, which is what makes deep trees cost O(arity) spawns per node
instead of O(n) at the coordinator.

Data flow:

* **down** — frames addressed by node id (``{"to": k}``); a worker
  consumes frames addressed to itself and routes the rest to the child
  whose subtree contains the target.  ``shutdown`` broadcasts.
* **up** — RESULT / DONE / ERROR / HEARTBEAT / READY frames; relay
  threads forward children's raw frames verbatim (gather up the tree),
  and a child pipe hitting EOF emits a ``dead`` frame so the
  coordinator can re-shard the lost subtree's slices.

Evaluation runs on a separate thread against a
:class:`~repro.fabric.jobs.JobPlan` built locally from the HELLO's job
description; every cell is evaluated on a fresh deep copy of its spec,
so a retried cell can never observe a consumed SeedSequence.  Workers
inherit the environment, so ``REPRO_SURFACES_PREFIX`` attaches them to
a published surface arena exactly like fork-pool sweep workers.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.fabric import wire
from repro.fabric.gridslice import GridSlice
from repro.fabric.jobs import FabricJob, build_job
from repro.resilience.deadline import Deadline, deadline_from_env

__all__ = [
    "children_of",
    "parent_of",
    "route_step",
    "subtree_of",
    "spawn_child",
    "run_worker",
    "main",
]


# ---------------------------------------------------------------------------
# Tree topology (heap numbering, coordinator = node 0)
# ---------------------------------------------------------------------------


def children_of(node: int, arity: int, n_workers: int) -> list[int]:
    """Direct children of ``node`` in an ``arity``-ary heap of workers."""
    first = arity * node + 1
    return [c for c in range(first, first + arity) if c <= n_workers]


def parent_of(node: int, arity: int) -> int:
    """The parent node id (node 0 is the coordinator and has none)."""
    if node < 1:
        raise ValueError(f"node {node} has no parent")
    return (node - 1) // arity


def route_step(node: int, target: int, arity: int) -> int:
    """The direct child of ``node`` whose subtree contains ``target``."""
    hop = target
    while hop > 0:
        parent = parent_of(hop, arity)
        if parent == node:
            return hop
        hop = parent
    raise ValueError(f"node {target} is not in the subtree of {node}")


def subtree_of(node: int, arity: int, n_workers: int) -> list[int]:
    """``node`` and every descendant worker, ascending."""
    members = [node] if node >= 1 else []
    frontier = children_of(node, arity, n_workers)
    while frontier:
        members.extend(frontier)
        frontier = [
            grandchild
            for child in frontier
            for grandchild in children_of(child, arity, n_workers)
        ]
    return sorted(members)


# ---------------------------------------------------------------------------
# Spawning
# ---------------------------------------------------------------------------


def _child_env() -> dict[str, str]:
    """The child's environment: inherited, plus a robust import path.

    The tier-1 invocation sets a *relative* ``PYTHONPATH=src``, which
    would break if a child's working directory ever differed; pinning
    the absolute location of the installed/checked-out ``repro``
    package makes spawns location-independent.  Everything else —
    including ``REPRO_SURFACES_PREFIX`` — passes through.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


#: Spawn command body: importing the module (rather than ``-m``) avoids
#: runpy's double-execution warning, since the fabric package itself
#: imports this module.
_SPAWN_SNIPPET = (
    "import repro.fabric.worker as w; raise SystemExit(w.main())"
)


def spawn_child(
    hello: dict, codec: int, extra_env: dict[str, str] | None = None
) -> subprocess.Popen:
    """Spawn one worker process and send it its HELLO frame.

    ``extra_env`` overlays the inherited environment — the coordinator
    uses it to hand the remaining request budget down as
    ``REPRO_DEADLINE_MS``.
    """
    env = _child_env()
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-c", _SPAWN_SNIPPET],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=None,  # passes through for debuggability
        env=env,
    )
    wire.write_frame(proc.stdin, hello, codec)
    return proc


# ---------------------------------------------------------------------------
# The worker node
# ---------------------------------------------------------------------------


class _WorkerNode:
    def __init__(self, inp, out):
        self._in = inp
        self._out = out
        self._out_lock = threading.Lock()
        self._stop = threading.Event()
        self._work_queue: queue.Queue = queue.Queue()
        self._children: dict[int, subprocess.Popen] = {}
        self._done_cells = 0
        self.node = -1
        self.arity = 1
        self.n_workers = 0
        self.codec = wire.CODEC_JSON
        self.deadline: Deadline | None = None

    def _send(self, message: dict) -> None:
        try:
            wire.write_frame(
                self._out, message, self.codec, lock=self._out_lock
            )
        except (BrokenPipeError, ValueError, OSError):
            # Parent is gone; we are about to notice EOF and exit.
            self._stop.set()

    def _forward_raw(self, raw: bytes) -> None:
        try:
            wire.write_raw_frame(self._out, raw, lock=self._out_lock)
        except (BrokenPipeError, ValueError, OSError):
            self._stop.set()

    # -- threads ------------------------------------------------------

    def _relay_loop(self, child_node: int, proc: subprocess.Popen) -> None:
        """Forward one child's frames verbatim; report EOF as a death."""
        stream = proc.stdout
        while True:
            try:
                raw = wire.read_raw_frame(stream)
            except wire.FrameError:
                raw = None  # killed mid-frame: same as EOF
            if raw is None:
                break
            self._forward_raw(raw)
        if not self._stop.is_set():
            self._send({"type": "dead", "node": child_node})

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self._send(
                {
                    "type": "heartbeat",
                    "node": self.node,
                    "done": self._done_cells,
                }
            )

    def _evaluate_loop(self, plan) -> None:
        while True:
            item = self._work_queue.get()
            if item is None:
                return
            work_id, slice_text = item["work"], item["slice"]
            grid_slice = GridSlice.parse(plan.grid, slice_text)
            started = time.perf_counter()
            completed = 0
            for index in grid_slice:
                if self._stop.is_set():
                    return
                if self.deadline is not None and self.deadline.expired:
                    # Budget spent: stop burning CPU.  The coordinator
                    # holds the same deadline and raises the structured
                    # 504 itself; this worker just refuses to block the
                    # request path past its budget.
                    break
                try:
                    record = plan.run_cell(index)
                except KeyError:
                    self._send(
                        {
                            "type": "error",
                            "node": self.node,
                            "work": work_id,
                            "index": index,
                            "error": f"no cell at grid index {index}",
                        }
                    )
                    continue
                except Exception as exc:
                    self._send(
                        {
                            "type": "error",
                            "node": self.node,
                            "work": work_id,
                            "index": index,
                            "error": repr(exc),
                        }
                    )
                    continue
                completed += 1
                self._done_cells += 1
                self._send(
                    {
                        "type": "result",
                        "node": self.node,
                        "work": work_id,
                        "index": index,
                        "record": record,
                    }
                )
            self._send(
                {
                    "type": "done",
                    "node": self.node,
                    "work": work_id,
                    "cells": completed,
                    "busy_seconds": time.perf_counter() - started,
                }
            )

    # -- lifecycle ----------------------------------------------------

    def run(self) -> int:
        hello = wire.read_frame(self._in)
        if hello is None or hello.get("type") != "hello":
            return 1
        self.node = int(hello["node"])
        self.n_workers = int(hello["n_workers"])
        self.arity = int(hello["arity"])
        self.codec = int(hello.get("codec", wire.CODEC_JSON))
        interval = float(hello.get("heartbeat_interval", 0.5))
        budget_ms = hello.get("deadline_ms")
        if budget_ms is not None:
            # The budget started ticking at the coordinator; starting a
            # fresh Deadline from the HELLO value is conservative only
            # by the spawn latency already spent.
            self.deadline = Deadline(float(budget_ms))
        else:
            self.deadline = deadline_from_env()

        try:
            plan = build_job(FabricJob.from_wire(hello["job"]))
        except Exception as exc:
            self._send(
                {
                    "type": "error",
                    "node": self.node,
                    "fatal": True,
                    "error": repr(exc),
                }
            )
            return 1

        for child_node in children_of(self.node, self.arity, self.n_workers):
            child_hello = dict(hello, node=child_node)
            proc = spawn_child(child_hello, self.codec)
            self._children[child_node] = proc
            threading.Thread(
                target=self._relay_loop,
                args=(child_node, proc),
                daemon=True,
                name=f"relay-{child_node}",
            ).start()

        self._send({"type": "ready", "node": self.node, "pid": os.getpid()})
        threading.Thread(
            target=self._heartbeat_loop,
            args=(interval,),
            daemon=True,
            name="heartbeat",
        ).start()
        evaluator = threading.Thread(
            target=self._evaluate_loop,
            args=(plan,),
            daemon=True,
            name="evaluator",
        )
        evaluator.start()

        while True:
            try:
                frame = wire.read_frame(self._in)
            except wire.FrameError:
                break
            if frame is None:
                break
            kind = frame.get("type")
            if kind == "shutdown":
                self._broadcast(frame)
                break
            if kind == "work":
                target = int(frame["to"])
                if target == self.node:
                    self._work_queue.put(frame)
                else:
                    self._route_down(target, frame)

        self._shutdown(evaluator)
        return 0

    def _broadcast(self, frame: dict) -> None:
        for proc in self._children.values():
            self._child_write(proc, frame)

    def _route_down(self, target: int, frame: dict) -> None:
        try:
            hop = route_step(self.node, target, self.arity)
            proc = self._children[hop]
        except (ValueError, KeyError):
            self._send(
                {
                    "type": "error",
                    "node": self.node,
                    "error": f"no route from node {self.node} to {target}",
                }
            )
            return
        self._child_write(proc, frame)

    def _child_write(self, proc: subprocess.Popen, frame: dict) -> None:
        try:
            wire.write_frame(proc.stdin, frame, self.codec)
        except (BrokenPipeError, ValueError, OSError):
            pass  # the relay thread reports the death

    def _shutdown(self, evaluator: threading.Thread) -> None:
        self._stop.set()
        self._work_queue.put(None)
        for proc in self._children.values():
            try:
                proc.stdin.close()
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._children.values():
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        evaluator.join(timeout=1.0)


def run_worker(inp, out) -> int:
    """Run one worker node over the given binary streams."""
    return _WorkerNode(inp, out).run()


def main() -> int:
    """Process entrypoint: frames on stdin/stdout, logs on stderr."""
    return run_worker(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":
    sys.exit(main())
