"""Multi-process torture: concurrent readers under atomic version swaps.

The arena's consistency claim is structural — data segments are
write-once and checksummed, only a 32-byte seqlock pointer ever mutates
— but the claim is about *processes*, so these tests exercise it with
real ones:

* N reader processes hammer ``load``/``exact`` while the parent swaps
  versions as fast as it can.  Every read must decode (magic, digest,
  expected version, checksum — a torn surface cannot pass), carry a
  monotonically non-decreasing version, and serve the exact expected
  values.
* After the final swap completes, a fresh load in every process must
  observe the final version — no stale-version reads once ``publish``
  returns.
* Teardown is leak-free: ``unlink_all`` empties the prefix, and even a
  SIGKILLed publisher (whose resource tracker never saw the segments)
  leaves nothing behind once :meth:`SurfaceArena.purge` runs — the
  janitor pattern reused from the chaos harness in
  ``tests/resilience/test_chaos.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service.protocol import parse_query
from repro.surfaces import (
    SurfaceArena,
    materialize_surface,
    signature_of,
)

SHM = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM.is_dir(), reason="POSIX shared memory not available"
)

N_READERS = 4
N_SWAPS = 30


def _segments(prefix):
    return sorted(p.name for p in SHM.glob(f"{prefix}.*"))


def _query():
    return parse_query(
        {"scheme": "full", "N": 8, "M": 8, "B": 3, "r": 0.5}
    )


def _reader(prefix, stop_event, result_queue):
    """Loop lookups against a swapping arena; report any anomaly."""
    query = _query()
    signature = signature_of(query)
    arena = SurfaceArena(prefix=prefix)
    reads = 0
    last_version = 0
    try:
        while not stop_event.is_set():
            surface = arena.load(signature)
            if surface is None:
                continue  # nothing published yet
            if surface.version < last_version:
                result_queue.put(
                    ("version-regression", surface.version, last_version)
                )
                return
            last_version = surface.version
            value = surface.exact(3, 0.5)
            expected = float(surface.values[64, 2])
            if value != expected or not np.isfinite(value):
                result_queue.put(("torn-read", value, surface.version))
                return
            reads += 1
        # Swaps are over: the next load must see the final version.
        final = arena.load(signature)
        result_queue.put(("ok", reads, final.version if final else None))
    finally:
        arena.close()


class TestConcurrentSwaps:
    def test_readers_never_torn_never_stale(self, tmp_path):
        prefix = f"repro-tort-{tmp_path.name.lower()}"
        query = _query()
        signature = signature_of(query)
        surface = materialize_surface(signature)

        ctx = multiprocessing.get_context("fork")
        stop = ctx.Event()
        results = ctx.Queue()
        arena = SurfaceArena(prefix=prefix)
        try:
            arena.publish(surface)
            readers = [
                ctx.Process(
                    target=_reader, args=(prefix, stop, results),
                    daemon=True,
                )
                for _ in range(N_READERS)
            ]
            for reader in readers:
                reader.start()
            final_version = 1
            for _ in range(N_SWAPS):
                final_version = arena.publish(surface)
                time.sleep(0.005)  # let readers interleave
            stop.set()
            outcomes = [results.get(timeout=30) for _ in readers]
            for reader in readers:
                reader.join(timeout=30)

            assert all(kind == "ok" for kind, *_ in outcomes), outcomes
            total_reads = sum(reads for _, reads, _ in outcomes)
            assert total_reads > 0
            # post-swap loads observe exactly the final version
            assert [v for *_, v in outcomes] == (
                [final_version] * N_READERS
            )
            assert final_version == N_SWAPS + 1
        finally:
            stop.set()
            arena.unlink_all()
        assert _segments(prefix) == []


class TestCrashCleanup:
    def test_sigkilled_publisher_leaves_no_segments_after_purge(
        self, tmp_path
    ):
        prefix = f"repro-tort-{tmp_path.name.lower()}"
        surface = materialize_surface(signature_of(_query()))

        def _publisher():
            arena = SurfaceArena(prefix=prefix)
            arena.publish(surface)
            os.kill(os.getpid(), signal.SIGKILL)  # dies mid-ownership

        ctx = multiprocessing.get_context("fork")
        publisher = ctx.Process(target=_publisher)
        publisher.start()
        publisher.join(timeout=30)
        assert publisher.exitcode == -signal.SIGKILL

        # The fork-shared resource tracker cannot reclaim these.
        leaked = _segments(prefix)
        assert leaked, "publisher should have leaked segments"
        removed = SurfaceArena.purge(prefix)
        assert sorted(removed) == leaked
        assert _segments(prefix) == []

    def test_sigkilled_reader_does_not_unlink_live_arena(self, tmp_path):
        prefix = f"repro-tort-{tmp_path.name.lower()}"
        signature = signature_of(_query())
        surface = materialize_surface(signature)
        arena = SurfaceArena(prefix=prefix)
        try:
            arena.publish(surface)

            def _doomed_reader():
                reader = SurfaceArena(prefix=prefix)
                loaded = reader.load(signature)
                assert loaded is not None
                os.kill(os.getpid(), signal.SIGKILL)

            ctx = multiprocessing.get_context("fork")
            reader = ctx.Process(target=_doomed_reader)
            reader.start()
            reader.join(timeout=30)
            assert reader.exitcode == -signal.SIGKILL

            # The attach-side unregister kept the reader's tracker out
            # of the arena: segments survive and still serve.
            assert _segments(prefix)
            assert arena.load(signature).exact(3, 0.5) == surface.exact(
                3, 0.5
            )
        finally:
            arena.unlink_all()
        assert _segments(prefix) == []
