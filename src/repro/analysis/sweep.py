"""Parameter sweeps over bus counts, request rates and schemes.

The paper's evaluation is a grid of (scheme, N, B, r, requesting model)
cells; this module produces such grids as lists of flat record dicts that
the table renderer, the experiments and the benchmarks all share.

Since the batched analytic engine landed, sweeps no longer evaluate cell
by cell: for each (rate, model) pair the whole bus-count vector is
computed from one cached pmf by :mod:`repro.analysis.batch`, and no
network object is constructed per cell.  Structurally invalid cells —
the paper tables' blank entries — are no longer silently dropped either:
the ``*_with_skips`` variants return them as
:class:`~repro.analysis.batch.SkippedCell` records, and the classic
functions log them on this module's logger.
"""

from __future__ import annotations

import dataclasses
import logging
from collections.abc import Callable, Iterable, Sequence

from repro.analysis.batch import SkippedCell, scheme_bus_profile
from repro.core.hierarchy import paper_two_level_model
from repro.core.request_models import RequestModel, UniformRequestModel
from repro.obs.metrics import get_registry
from repro.obs.spans import span

__all__ = [
    "SweepResult",
    "bandwidth_sweep",
    "bandwidth_sweep_with_skips",
    "bus_count_sweep",
    "bus_count_sweep_with_skips",
    "paper_model_pair",
]

logger = logging.getLogger(__name__)


def paper_model_pair(
    n_processors: int, rate: float
) -> dict[str, RequestModel]:
    """Return the paper's two Section IV request models for one machine.

    ``hier`` — the two-level hierarchy (4 clusters, aggregate fractions
    0.6 / 0.3 / 0.1); ``unif`` — the uniform model.
    """
    return {
        "hier": paper_two_level_model(n_processors, rate=rate),
        "unif": UniformRequestModel(n_processors, n_processors, rate=rate),
    }


@dataclasses.dataclass
class SweepResult:
    """A sweep's records plus the audited skipped cells."""

    records: list[dict[str, object]]
    skipped: list[SkippedCell]


def _log_skips(skipped: Sequence[SkippedCell]) -> None:
    for cell in skipped:
        logger.debug(
            "skipping scheme=%s B=%d: %s", cell.scheme, cell.n_buses,
            cell.reason,
        )


def bandwidth_sweep_with_skips(
    scheme: str,
    n_processors: int,
    bus_counts: Sequence[int],
    rates: Sequence[float],
    model_factory: Callable[[int, float], dict[str, RequestModel]] = paper_model_pair,
    n_memories: int | None = None,
    **network_kwargs,
) -> SweepResult:
    """Evaluate one scheme across a (B, r, model) grid, auditing skips.

    Returns one record per valid grid cell (same shape as
    :func:`bandwidth_sweep`) plus one :class:`SkippedCell` per
    structurally invalid ``(scheme, B)`` combination — the blank cells of
    the paper's tables, deduplicated across rates and models since
    feasibility depends only on the structure.
    """
    if n_memories is None:
        n_memories = n_processors
    bus_counts = [int(b) for b in bus_counts]
    records: list[dict[str, object]] = []
    skipped: list[SkippedCell] = []
    sweep_span = span(
        "sweep.bandwidth", scheme=scheme, N=n_processors, M=n_memories
    )
    with sweep_span:
        _sweep_grid(
            scheme, n_processors, n_memories, bus_counts, rates,
            model_factory, records, skipped, network_kwargs,
        )
        sweep_span.set_attribute("records", len(records))
    get_registry().increment("sweep.records", len(records), scheme=scheme)
    return SweepResult(records=records, skipped=skipped)


def _sweep_grid(
    scheme: str,
    n_processors: int,
    n_memories: int,
    bus_counts: list[int],
    rates: Sequence[float],
    model_factory: Callable[[int, float], dict[str, RequestModel]],
    records: list[dict[str, object]],
    skipped: list[SkippedCell],
    network_kwargs: dict,
) -> None:
    """Fill ``records``/``skipped`` for :func:`bandwidth_sweep_with_skips`."""
    for rate in rates:
        models = model_factory(n_processors, rate)
        profiles = {
            name: scheme_bus_profile(
                scheme, n_processors, n_memories, bus_counts, model,
                **network_kwargs,
            )
            for name, model in models.items()
        }
        if not skipped:
            seen: set[tuple[str, int]] = set()
            for profile in profiles.values():
                for cell in profile.skipped:
                    if (cell.scheme, cell.n_buses) not in seen:
                        seen.add((cell.scheme, cell.n_buses))
                        skipped.append(cell)
        for n_buses in bus_counts:
            for name in models:
                values = profiles[name].values
                if n_buses not in values:
                    continue
                records.append(
                    {
                        "scheme": scheme,
                        "N": n_processors,
                        "M": n_memories,
                        "B": n_buses,
                        "r": rate,
                        "model": name,
                        "bandwidth": values[n_buses],
                    }
                )


def bandwidth_sweep(
    scheme: str,
    n_processors: int,
    bus_counts: Sequence[int],
    rates: Sequence[float],
    model_factory: Callable[[int, float], dict[str, RequestModel]] = paper_model_pair,
    n_memories: int | None = None,
    **network_kwargs,
) -> list[dict[str, object]]:
    """Evaluate one scheme across a (B, r, model) grid.

    Returns one record per grid cell::

        {"scheme", "N", "M", "B", "r", "model", "bandwidth"}

    Grid cells whose parameters are structurally invalid for the scheme
    (e.g. ``g`` does not divide ``B``) are skipped, mirroring the blank
    cells of the paper's tables; the skipped combinations are logged at
    DEBUG level and available from :func:`bandwidth_sweep_with_skips`.
    """
    result = bandwidth_sweep_with_skips(
        scheme, n_processors, bus_counts, rates, model_factory,
        n_memories, **network_kwargs,
    )
    _log_skips(result.skipped)
    return result.records


def bus_count_sweep_with_skips(
    scheme: str,
    n_processors: int,
    model: RequestModel,
    bus_counts: Iterable[int] | None = None,
    **network_kwargs,
) -> tuple[dict[int, float], list[SkippedCell]]:
    """Bandwidth as a function of ``B``, plus the audited skipped counts.

    The whole profile comes from a single cached pmf and one whole-grid
    kernel — no network object is built per bus count.
    """
    if bus_counts is None:
        bus_counts = range(1, n_processors + 1)
    with span("sweep.bus_count", scheme=scheme, N=n_processors):
        profile = scheme_bus_profile(
            scheme,
            n_processors,
            model.n_memories,
            [int(b) for b in bus_counts],
            model,
            **network_kwargs,
        )
    return profile.values, profile.skipped


def bus_count_sweep(
    scheme: str,
    n_processors: int,
    model: RequestModel,
    bus_counts: Iterable[int] | None = None,
    **network_kwargs,
) -> dict[int, float]:
    """Bandwidth as a function of ``B`` for one scheme and model.

    ``bus_counts`` defaults to ``1..N``; invalid counts are skipped (and
    logged at DEBUG level — use :func:`bus_count_sweep_with_skips` to
    inspect them programmatically).
    """
    values, skipped = bus_count_sweep_with_skips(
        scheme, n_processors, model, bus_counts, **network_kwargs
    )
    _log_skips(skipped)
    return values
