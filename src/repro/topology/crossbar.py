"""The ``N x M`` crossbar baseline.

The crossbar allows all one-to-one simultaneous processor-module
connections; only memory interference limits its bandwidth.  The paper
uses it as the upper-bound row of Tables II-III and notes its prohibitive
``O(N^2)`` cost.  Structurally we embed it in the multiple-bus framework
as a full connection network with ``B = min(N, M)`` buses — bandwidth-
equivalent because at most ``min(N, M)`` transfers can happen per cycle —
while reporting the true crosspoint cost ``N * M``.
"""

from __future__ import annotations

from repro.topology.full import FullBusMemoryNetwork

__all__ = ["CrossbarNetwork"]


class CrossbarNetwork(FullBusMemoryNetwork):
    """An ``N x M`` crossbar, bandwidth-equivalent to full connection with
    ``B = min(N, M)`` buses."""

    scheme = "crossbar"

    def __init__(self, n_processors: int, n_memories: int):
        super().__init__(
            n_processors, n_memories, n_buses=min(n_processors, n_memories)
        )

    def connection_count(self) -> int:
        """Crosspoint count ``N * M`` — the paper's ``O(N^2)`` cost."""
        return self.n_processors * self.n_memories

    def bus_loads(self):
        """Crossbar lines carry one processor and all modules (row lines).

        Reported for completeness; the paper does not tabulate crossbar
        loads.  Each of the ``N`` row lines sees ``M`` crosspoints.
        """
        import numpy as np

        return np.full(self.n_buses, self.n_memories, dtype=int)
