"""E8 benchmark: recompute the Section IV narrative claims."""

from repro.experiments import claims


def test_claims(benchmark):
    result = benchmark(claims.run)
    failures = [r for r in result.records if not r["passed"]]
    assert not failures, failures
