"""Parsing, normalization and the structured error envelope.

The fuzz suites drive :func:`repro.service.protocol.parse_query` with
malformed JSON shapes — wrong types, NaN rates, out-of-range machine
parameters, oversized sweeps — and require every rejection to be a
*typed* library error that maps to a 4xx envelope, never an uncaught
``TypeError``/``KeyError`` that would reach a client as a traceback.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.hierarchy import HierarchicalRequestModel
from repro.core.request_models import UniformRequestModel
from repro.exceptions import (
    AdmissionError,
    ConfigurationError,
    ModelError,
    QueryTooLargeError,
    ReproError,
)
from repro.service.protocol import (
    SCHEMES,
    Query,
    ServiceLimits,
    build_model,
    error_envelope,
    parse_query,
    status_for,
)

VALID = {"scheme": "full", "N": 16, "M": 16, "B": 8, "r": 0.5}


# ----------------------------------------------------------------------
# Happy path and normalization
# ----------------------------------------------------------------------


def test_parse_minimal_defaults():
    query = parse_query({"scheme": "full", "N": 8, "B": 4})
    assert query == Query(
        scheme="full",
        n_processors=8,
        n_memories=8,
        bus_counts=(4,),
        rate=1.0,
        model="unif",
    )
    assert not query.is_sweep


def test_spelling_variants_normalize_to_equal_queries():
    base = parse_query({"scheme": "full", "N": 8, "M": 8, "B": 4, "r": 1.0,
                        "model": "unif"})
    for variant in (
        {"scheme": "full", "N": 8, "B": 4},
        {"scheme": "full", "N": 8, "B": 4, "model": "uniform", "r": 1},
    ):
        other = parse_query(variant)
        assert other == base
        assert hash(other) == hash(base)


def test_hierarchy_defaults_and_explicit_spellings_coalesce():
    implicit = parse_query({"scheme": "full", "N": 16, "B": 8,
                            "model": "hier"})
    explicit = parse_query({
        "scheme": "full", "N": 16, "B": 8, "model": "hierarchical",
        "hierarchy": {"clusters": 4, "fractions": [0.6, 0.3, 0.1]},
    })
    assert implicit == explicit
    assert implicit.clusters == 4
    assert implicit.fractions == (0.6, 0.3, 0.1)


def test_sweep_accepts_bus_count_vector():
    query = parse_query({"scheme": "single", "N": 8, "B": [1, 2, 4]},
                        sweep=True)
    assert query.bus_counts == (1, 2, 4)
    assert query.is_sweep


def test_network_kwargs_are_canonical_tuples():
    query = parse_query({"scheme": "kclass", "N": 8, "M": 8, "B": 4,
                         "class_sizes": [4, 4]})
    assert query.network_kwargs == (("class_sizes", (4, 4)),)
    assert hash(query) == hash(parse_query(
        {"scheme": "kclass", "N": 8, "M": 8, "B": 4, "class_sizes": (4, 4)}
    ))


def test_build_model_uniform_and_hierarchical():
    unif = build_model(parse_query({"scheme": "full", "N": 8, "B": 4,
                                    "r": 0.5}))
    assert isinstance(unif, UniformRequestModel)
    hier = build_model(parse_query({"scheme": "full", "N": 16, "B": 4,
                                    "model": "hier"}))
    assert isinstance(hier, HierarchicalRequestModel)


def test_build_model_bad_hierarchy_is_model_error():
    # 3 clusters do not divide N=16: rejected by the model constructor,
    # on the same typed path as direct library use.
    query = parse_query({"scheme": "full", "N": 16, "B": 4, "model": "hier",
                         "hierarchy": {"clusters": 3}})
    with pytest.raises((ModelError, ConfigurationError)):
        build_model(query)


# ----------------------------------------------------------------------
# Negative cases: every rejection is a typed 4xx
# ----------------------------------------------------------------------


@pytest.mark.parametrize("payload", [
    None,
    [],
    "scheme=full",
    42,
])
def test_non_object_payload_rejected(payload):
    with pytest.raises(ConfigurationError):
        parse_query(payload)


@pytest.mark.parametrize("mutation", [
    {"scheme": "mesh"},
    {"scheme": None},
    {"scheme": 3},
    {"N": "16"},
    {"N": 0},
    {"N": -4},
    {"N": True},
    {"N": 2.5},
    {"M": 0},
    {"M": False},
    {"B": None},
    {"B": "8"},
    {"B": 0},
    {"B": -1},
    {"B": True},
    {"B": [4, 8]},          # list is only legal for sweeps
    {"r": "half"},
    {"r": -0.1},
    {"r": 1.5},
    {"r": float("nan")},
    {"r": float("inf")},
    {"r": True},
    {"model": "zipf"},
    {"model": 7},
    {"hierarchy": {"clusters": 4}},     # only legal with model=hier
    {"n_groups": 2},                    # partial-only field on "full"
    {"class_sizes": [8, 8]},            # kclass-only field on "full"
    {"bogus_field": 1},
])
def test_malformed_single_cell_payloads(mutation):
    payload = {**VALID, **mutation}
    with pytest.raises((ConfigurationError, ModelError)):
        parse_query(payload)


@pytest.mark.parametrize("mutation", [
    {"model": "hier", "M": 8},                            # hier needs M == N
    {"model": "hier", "hierarchy": {"clusters": "4"}},
    {"model": "hier", "hierarchy": {"clusters": 0}},
    {"model": "hier", "hierarchy": {"clusters": True}},
    {"model": "hier", "hierarchy": {"fractions": "abc"}},
    {"model": "hier", "hierarchy": {"fractions": [0.5, -0.1]}},
    {"model": "hier", "hierarchy": {"fractions": [float("nan")]}},
    {"model": "hier", "hierarchy": {"levels": 2}},
    {"model": "hier", "hierarchy": [0.6, 0.3]},
])
def test_malformed_hierarchy_payloads(mutation):
    with pytest.raises(ConfigurationError):
        parse_query({**VALID, **mutation})


@pytest.mark.parametrize("mutation", [
    {"scheme": "partial", "n_groups": 0},
    {"scheme": "partial", "n_groups": "2"},
    {"scheme": "kclass", "class_sizes": []},
    {"scheme": "kclass", "class_sizes": "88"},
    {"scheme": "kclass", "class_sizes": [8, "8"]},
    {"scheme": "kclass", "class_sizes": [8, -8]},
    {"scheme": "kclass", "class_sizes": [4, 4]},  # sums to 8, M is 16
])
def test_malformed_network_kwargs(mutation):
    with pytest.raises(ConfigurationError):
        parse_query({**VALID, **mutation})


def test_oversized_machine_is_413():
    limits = ServiceLimits(max_machine=64)
    for field in ("N", "M", "B"):
        payload = {**VALID, field: 65}
        with pytest.raises((QueryTooLargeError, ConfigurationError)) as err:
            parse_query(payload, limits=limits)
        if field in ("N", "M"):
            assert isinstance(err.value, QueryTooLargeError)


def test_oversized_sweep_is_413():
    limits = ServiceLimits(max_sweep_cells=16)
    with pytest.raises(QueryTooLargeError):
        parse_query({**VALID, "B": list(range(1, 18))}, sweep=True,
                    limits=limits)


def test_empty_sweep_rejected():
    with pytest.raises(ConfigurationError):
        parse_query({**VALID, "B": []}, sweep=True)


def test_oversized_class_list_is_413():
    limits = ServiceLimits(max_machine=8)
    with pytest.raises(QueryTooLargeError):
        parse_query({"scheme": "kclass", "N": 8, "M": 8, "B": 4,
                     "class_sizes": [1] * 9}, limits=limits)


# ----------------------------------------------------------------------
# Status mapping and the error envelope
# ----------------------------------------------------------------------


def test_status_mapping():
    assert status_for(AdmissionError("shed")) == 429
    assert status_for(QueryTooLargeError("big")) == 413
    assert status_for(ConfigurationError("bad")) == 400
    assert status_for(ModelError("bad")) == 400
    assert status_for(ReproError("other")) == 400
    assert status_for(RuntimeError("boom")) == 500


def test_error_envelope_shape():
    status, body = error_envelope(ConfigurationError("field 'N' is bad"))
    assert status == 400
    assert body == {
        "ok": False,
        "error": {"status": 400, "type": "ConfigurationError",
                  "message": "field 'N' is bad"},
    }


def test_error_envelope_hides_internal_errors():
    status, body = error_envelope(RuntimeError("secret state dump"))
    assert status == 500
    assert body["error"]["message"] == "internal error"
    assert "secret" not in str(body)


def test_error_envelope_carries_retry_hint():
    exc = AdmissionError("shed", retry_after_seconds=0.25, reason="rate")
    status, body = error_envelope(exc)
    assert status == 429
    assert body["error"]["retry_after_s"] == 0.25
    assert body["error"]["reason"] == "rate"


# ----------------------------------------------------------------------
# Hypothesis fuzz: arbitrary JSON can only fail with typed errors
# ----------------------------------------------------------------------

_JSON = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=True, allow_infinity=True, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=12), children, max_size=4),
    max_leaves=12,
)

_FIELDS = st.sampled_from(
    ["scheme", "N", "M", "B", "r", "model", "hierarchy", "n_groups",
     "class_sizes", "classes", "tenure"]
)


@given(payload=_JSON, sweep=st.booleans())
def test_fuzz_arbitrary_json_never_leaks_raw_exceptions(payload, sweep):
    try:
        query = parse_query(payload, sweep=sweep)
    except ReproError:
        return  # typed rejection: maps to a structured 4xx envelope
    assert isinstance(query, Query)
    assert query.scheme in SCHEMES
    assert math.isfinite(query.rate) and 0.0 <= query.rate <= 1.0
    assert all(b >= 1 for b in query.bus_counts)
    hash(query)  # normalized queries must stay hashable cache keys


@given(
    mutations=st.dictionaries(_FIELDS, _JSON, min_size=1, max_size=3),
    sweep=st.booleans(),
)
def test_fuzz_mutated_valid_payloads(mutations, sweep):
    payload = {**VALID, **mutations}
    try:
        query = parse_query(payload, sweep=sweep)
    except ReproError:
        return
    assert isinstance(query, Query)
    hash(query)
