"""E4 benchmark: regenerate Table IV (single bus-memory connection)."""

from repro.experiments import table4


def test_table4_single(benchmark, reproduces):
    result = benchmark(table4.run)
    reproduces(result)
    assert result.n_compared >= 50
