"""Model accuracy: four answers to "what is the bandwidth?".

For one machine this example compares every estimator the library
offers, from cheapest to most faithful:

1. the paper's closed form (eq. 4) — binomial independence shortcut,
2. exact subset enumeration — same assumptions, no shortcut,
3. Monte-Carlo simulation of the drop model — should match (2),
4. resubmission analysis + simulation — real processors retry blocked
   requests, which the first three ignore.

Run:  python examples/model_accuracy.py
"""

from repro import (
    FullBusMemoryNetwork,
    ResubmissionSimulator,
    analytic_bandwidth,
    exact_bandwidth,
    paper_two_level_model,
    render_table,
    simulate_bandwidth,
    solve_resubmission_equilibrium,
)

N, B = 12, 6


def main() -> None:
    network = FullBusMemoryNetwork(N, N, B)
    rows = []
    for rate in (0.3, 0.6, 1.0):
        model = paper_two_level_model(N, rate=rate)
        eq4 = analytic_bandwidth(network, model)
        exact = exact_bandwidth(network, model)
        sim = simulate_bandwidth(network, model, n_cycles=30_000, seed=8)
        resub_eq = solve_resubmission_equilibrium(
            model, lambda m: analytic_bandwidth(network, m)
        )
        resub_sim = ResubmissionSimulator(network, model, seed=8).run(20_000)
        rows.append(
            {
                "r": rate,
                "eq.(4)": round(eq4, 3),
                "exact": round(exact, 3),
                "sim (drop)": round(sim.bandwidth, 3),
                "resub analytic": round(resub_eq.bandwidth, 3),
                "resub sim": round(resub_sim.bandwidth, 3),
                "resub wait": round(resub_sim.mean_wait_cycles, 2),
            }
        )
    print(render_table(
        rows,
        title=(
            f"Bandwidth of a {N}x{N}x{B} full connection network, "
            "hierarchical model — five estimators"
        ),
    ))
    print(
        "\nReading guide: eq.(4) slightly undershoots 'exact' (the "
        "binomial independence approximation); the drop-model simulation "
        "lands on 'exact' within noise; resubmission raises throughput "
        "toward saturation at lower nominal rates, at the price of the "
        "queueing delay shown in the last column — the dimension the "
        "paper's drop model cannot express."
    )


if __name__ == "__main__":
    main()
