"""Shared fixtures and brute-force reference implementations.

The reference helpers here recompute the paper's quantities by explicit
enumeration over all request outcomes — exponential-time but obviously
correct — so the closed forms and arbiters can be tested against ground
truth on small machines.
"""

from __future__ import annotations

import itertools
import math
import os

import numpy as np
import pytest

from repro.core.request_models import UniformRequestModel
from repro.core.hierarchy import paper_two_level_model

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass
else:
    # "ci" (the default) is fully derandomized: every run replays the
    # same example sequence, so tier-1 stays deterministic.  Run with
    # HYPOTHESIS_PROFILE=dev for fresh random examples locally.
    settings.register_profile(
        "ci", derandomize=True, max_examples=25, deadline=None
    )
    settings.register_profile("dev", max_examples=50, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def uniform8() -> UniformRequestModel:
    """The 8-processor uniform model at r = 1.0."""
    return UniformRequestModel(8, 8, rate=1.0)


@pytest.fixture
def hier8():
    """The paper's two-level hierarchical model for N = 8, r = 1.0."""
    return paper_two_level_model(8, rate=1.0)


def enumerate_request_sets(n_modules: int, x: float):
    """Yield ``(requested_set, probability)`` over all module subsets.

    Modules are requested independently with probability ``x`` — the
    stochastic regime of eq. (3).
    """
    for bits in itertools.product((0, 1), repeat=n_modules):
        p = 1.0
        for bit in bits:
            p *= x if bit else (1.0 - x)
        yield {j for j, bit in enumerate(bits) if bit}, p


def brute_force_full_bandwidth(n_modules: int, n_buses: int, x: float) -> float:
    """Exact E[min(|requested|, B)] by enumeration."""
    return sum(
        p * min(len(req), n_buses)
        for req, p in enumerate_request_sets(n_modules, x)
    )


def brute_force_kclass_bandwidth(
    class_sizes: list[int], n_buses: int, x: float
) -> float:
    """Exact expected busy buses under the two-step procedure.

    Uses the busy-bus criterion derived in Section III-D: bus ``i``
    (1-based) is busy unless class ``C_j`` has at most ``j - a`` requests
    for every ``j >= a = i + K - B``.
    """
    k = len(class_sizes)
    n_modules = sum(class_sizes)
    class_of = []
    for j, size in enumerate(class_sizes, start=1):
        class_of.extend([j] * size)
    total = 0.0
    for requested, p in enumerate_request_sets(n_modules, x):
        counts = [0] * (k + 1)
        for module in requested:
            counts[class_of[module]] += 1
        busy = 0
        for bus in range(1, n_buses + 1):
            a = bus + k - n_buses
            idle = all(
                counts[j] <= j - a for j in range(max(a, 1), k + 1)
            )
            busy += 0 if idle else 1
        total += p * busy
    return total


def brute_force_matching_bandwidth(
    memory_bus_matrix: np.ndarray, x: float
) -> float:
    """Exact E[max matching size] between requested modules and buses."""
    import networkx as nx

    m = memory_bus_matrix.shape[0]
    total = 0.0
    for requested, p in enumerate_request_sets(m, x):
        graph = nx.Graph()
        top = []
        for module in requested:
            node = ("m", module)
            top.append(node)
            graph.add_node(node)
            for bus in np.flatnonzero(memory_bus_matrix[module]):
                graph.add_edge(node, ("b", int(bus)))
        matching = nx.bipartite.maximum_matching(
            graph, top_nodes=[n for n in top if graph.degree(n) > 0]
        )
        total += p * (len(matching) // 2)
    return total


def binomial_reference(n: int, i: int, p: float) -> float:
    """Textbook binomial pmf for cross-checking the log-space version."""
    return math.comb(n, i) * p**i * (1.0 - p) ** (n - i)
