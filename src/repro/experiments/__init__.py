"""Reproduction experiments: one module per paper table/figure/claim set.

Registry::

    from repro.experiments import EXPERIMENTS
    result = EXPERIMENTS["table2"]()
    print(result.rendered)
    print(result.summary())
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.exceptions import ExperimentError
from repro.experiments import (
    ablation,
    approximation,
    arbitration,
    availability,
    claims,
    figures,
    nxm,
    resubmission,
    structures,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    validation,
)
from repro.experiments.base import CellComparison, ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "CellComparison",
]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figures": figures.run,
    "claims": claims.run,
    "validation": validation.run,
    "ablation": ablation.run,
    "nxm": nxm.run,
    "resubmission": resubmission.run,
    "approximation": approximation.run,
    "availability": availability.run,
    "arbitration": arbitration.run,
    "structures": structures.run,
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id.

    Keyword arguments not accepted by the experiment's ``run`` function
    (e.g. ``n_workers`` for purely analytic experiments) are silently
    dropped, so callers can pass one option set across the registry.
    Raises :class:`~repro.exceptions.ExperimentError` for unknown ids.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    if kwargs:
        accepted = inspect.signature(runner).parameters
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return runner(**kwargs)
