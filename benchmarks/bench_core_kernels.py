"""Micro-benchmarks of the core computational kernels.

Not tied to a paper artifact; these track the scalability headroom of
the library (machines far beyond the paper's N = 32).
"""

import numpy as np

from repro.analysis.batch import binomial_pmf_grid, tail_excess_all_buses
from repro.core.bandwidth import bandwidth_full, bandwidth_full_heterogeneous
from repro.core.binomial import binomial_pmf, tail_excess
from repro.core.hierarchy import paper_two_level_model
from repro.core.kclasses import bandwidth_kclass
from repro.core.request_models import UniformRequestModel
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology import FullBusMemoryNetwork


def test_bandwidth_full_large_machine(benchmark):
    """Eq. (4) at N = 4096 — log-space binomials must stay exact."""
    value = benchmark(bandwidth_full, 4096, 2048, 0.632)
    assert 2000.0 < value <= 2048.0


def test_poisson_binomial_kernel(benchmark):
    """Heterogeneous eq. (4) with 1024 distinct module probabilities."""
    xs = np.linspace(0.1, 0.9, 1024)
    value = benchmark(bandwidth_full_heterogeneous, xs, 256)
    assert 0.0 < value <= 256.0 + 1e-9


def test_kclass_kernel_many_classes(benchmark):
    """Eq. (12) with K = 64 classes of 16 modules."""
    value = benchmark(bandwidth_kclass, [16] * 64, 64, 0.5)
    assert 0.0 < value <= 64.0


def test_tail_excess_all_buses_kernel(benchmark):
    """Every cap of a M = 8192 pmf from one reversed cumsum."""
    pmf = binomial_pmf(8192, 0.613)
    excess = benchmark(tail_excess_all_buses, pmf)
    assert excess.shape == pmf.shape
    for cap in (0, 1, 4096, 8192):
        assert abs(excess[cap] - tail_excess(pmf, cap)) < 1e-9


def test_binomial_pmf_grid_kernel(benchmark):
    """256 rate rows of Binomial(2048, p) in one broadcast gammaln pass."""
    ps = np.linspace(0.001, 0.999, 256)
    grid = benchmark(binomial_pmf_grid, 2048, ps)
    assert grid.shape == (256, 2049)
    assert np.allclose(grid.sum(axis=1), 1.0, atol=1e-12)


def test_hierarchy_fraction_matrix(benchmark):
    """N = 1024 two-level fraction matrix construction."""
    model = paper_two_level_model(1024)
    matrix = benchmark(model.fraction_matrix)
    assert matrix.shape == (1024, 1024)


def test_simulator_throughput(benchmark):
    """Cycles/second of the full engine on the paper's N=16 machine."""
    network = FullBusMemoryNetwork(16, 16, 8)
    model = UniformRequestModel(16, 16)

    def run():
        return MultiprocessorSimulator(network, model, seed=1).run(2_000)

    result = benchmark(run)
    assert result.n_cycles == 2_000
