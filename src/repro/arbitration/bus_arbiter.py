"""Stage two bus arbiters for full, grouped, and single connection schemes.

The paper's stage two is a ``B``-out-of-``M`` arbiter: at most ``B`` of
the stage-one winners obtain a bus each cycle, granted "in a round-robin
fashion to the memory modules that are requested" (Section II-A).  For
partial bus networks, each group runs an independent ``B/g``-out-of-
``M/g`` arbiter; for single connection networks, each bus independently
serves one of its requested modules.

All policies also accept a ``random`` selection variant — with the
paper's blocked-requests-dropped assumption, the *count* of grants (and
hence the bandwidth) is identical under any work-conserving selection
rule; round-robin only changes which modules win.  Tests exploit this
equivalence.

The priority extension adds a parallel family of stage-two policies
(``Priority*Assignment``) whose candidates carry a criticality class and
whose bus pool shrinks to the buses not still carrying a multi-cycle
burst.  They are deterministic given the candidate list (all randomness
lives in the stage-one composite keys), so the loop and vectorized
priority backends share the *same* policy objects and agree bit-for-bit.
With one class and every bus free, each policy grants exactly as many
requests to exactly the same bus positions as its baseline counterpart,
which is what the degenerate differential tests pin.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.arbitration.base import BusAssignmentPolicy
from repro.core.priority import ArbitrationSpec
from repro.exceptions import ConfigurationError, SimulationError

__all__ = [
    "RoundRobinBusAssignment",
    "RandomBusAssignment",
    "GroupedBusAssignment",
    "SingleBusAssignment",
    "CrossbarAssignment",
    "MatchingBusAssignment",
    "GrantScheduler",
    "PriorityBusPolicy",
    "PriorityFullAssignment",
    "PriorityGroupedAssignment",
    "PrioritySingleAssignment",
    "PriorityKClassAssignment",
]


class RoundRobinBusAssignment(BusAssignmentPolicy):
    """Round-robin ``B``-out-of-``M`` arbiter (full bus-memory connection).

    A pointer sweeps the module index space; each cycle the requested
    modules are served in cyclic order starting at the pointer, at most
    one per bus, and the pointer advances past the last module granted so
    no module can starve.
    """

    def __init__(self, n_memories: int, n_buses: int):
        super().__init__(n_memories, n_buses)
        self._next = 0

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        if not len(requested_modules):
            return {}
        ordered = sorted(
            requested_modules,
            key=lambda m: (m - self._next) % self._n_memories,
        )
        granted = ordered[: self._n_buses]
        if granted:
            self._next = (granted[-1] + 1) % self._n_memories
        return {bus: module for bus, module in enumerate(granted)}

    def reset(self) -> None:
        self._next = 0


class RandomBusAssignment(BusAssignmentPolicy):
    """Random ``B``-out-of-``M`` arbiter: a uniform subset of winners."""

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        modules = list(requested_modules)
        if not modules:
            return {}
        if len(modules) > self._n_buses:
            picked = rng.choice(len(modules), size=self._n_buses, replace=False)
            modules = [modules[i] for i in sorted(picked)]
        return {bus: module for bus, module in enumerate(modules)}


class GroupedBusAssignment(BusAssignmentPolicy):
    """Per-group round-robin arbitration for partial bus networks.

    Group ``q`` owns modules ``q*M/g..`` and buses ``q*B/g..``; requests
    never cross groups, so each group runs its own
    :class:`RoundRobinBusAssignment` over its local module space.
    """

    def __init__(self, n_memories: int, n_buses: int, n_groups: int):
        super().__init__(n_memories, n_buses)
        if n_groups < 1:
            raise ConfigurationError(f"need at least one group, got {n_groups}")
        if n_memories % n_groups or n_buses % n_groups:
            raise ConfigurationError(
                f"g={n_groups} must divide M={n_memories} and B={n_buses}"
            )
        self._n_groups = n_groups
        self._modules_per_group = n_memories // n_groups
        self._buses_per_group = n_buses // n_groups
        self._group_arbiters = [
            RoundRobinBusAssignment(self._modules_per_group, self._buses_per_group)
            for _ in range(n_groups)
        ]

    @property
    def n_groups(self) -> int:
        """Number of groups ``g``."""
        return self._n_groups

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        by_group: list[list[int]] = [[] for _ in range(self._n_groups)]
        for module in requested_modules:
            by_group[module // self._modules_per_group].append(
                module % self._modules_per_group
            )
        grants: dict[int, int] = {}
        for group, (arbiter, local) in enumerate(
            zip(self._group_arbiters, by_group)
        ):
            for local_bus, local_module in arbiter.assign(local, rng).items():
                bus = group * self._buses_per_group + local_bus
                grants[bus] = group * self._modules_per_group + local_module
        return grants

    def reset(self) -> None:
        for arbiter in self._group_arbiters:
            arbiter.reset()


class SingleBusAssignment(BusAssignmentPolicy):
    """Per-bus arbitration for single bus-memory connection networks.

    Each bus independently serves one of its requested attached modules,
    chosen round-robin over the bus's local module list.
    """

    def __init__(self, bus_of_module: Sequence[int], n_buses: int):
        bus_of_module = [int(b) for b in bus_of_module]
        super().__init__(len(bus_of_module), n_buses)
        for j, bus in enumerate(bus_of_module):
            if not 0 <= bus < n_buses:
                raise ConfigurationError(
                    f"module {j} assigned to nonexistent bus {bus}"
                )
        self._bus_of_module = bus_of_module
        self._pointers = [0] * n_buses

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        by_bus: dict[int, list[int]] = {}
        for module in requested_modules:
            if not 0 <= module < self._n_memories:
                raise SimulationError(
                    f"module {module} outside [0, {self._n_memories})"
                )
            by_bus.setdefault(self._bus_of_module[module], []).append(module)
        grants: dict[int, int] = {}
        for bus, modules in by_bus.items():
            pointer = self._pointers[bus]
            winner = min(modules, key=lambda m: (m - pointer) % self._n_memories)
            grants[bus] = winner
            self._pointers[bus] = (winner + 1) % self._n_memories
        return grants

    def reset(self) -> None:
        self._pointers = [0] * self._n_buses


class CrossbarAssignment(BusAssignmentPolicy):
    """Crossbar: no bus contention — every requested module is served.

    Grants are reported on virtual "buses" ``0..min(N, M)-1`` so crossbar
    results flow through the same metrics pipeline.
    """

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        modules = list(requested_modules)
        if len(modules) > self._n_buses:
            raise SimulationError(
                f"{len(modules)} requested modules exceed the crossbar's "
                f"{self._n_buses} simultaneous transfers; stage one must "
                "emit at most one winner per module"
            )
        return {bus: module for bus, module in enumerate(modules)}


class MatchingBusAssignment(BusAssignmentPolicy):
    """Optimal assignment for arbitrary connection matrices.

    Uses Hopcroft-Karp maximum bipartite matching between requested
    modules and the buses they attach to.  This is not one of the paper's
    arbiters; it serves as the *upper bound* policy for degraded (fault-
    injected) topologies where the structured arbiters no longer apply,
    and quantifies how much bandwidth the paper's simple two-step K-class
    procedure leaves on the table (ablation E10).
    """

    def __init__(self, memory_bus_matrix: np.ndarray):
        memory_bus_matrix = np.asarray(memory_bus_matrix, dtype=bool)
        if memory_bus_matrix.ndim != 2:
            raise ConfigurationError("memory_bus_matrix must be 2-D")
        super().__init__(*memory_bus_matrix.shape)
        self._matrix = memory_bus_matrix

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        import networkx as nx

        modules = [int(m) for m in requested_modules]
        if not modules:
            return {}
        graph = nx.Graph()
        module_nodes = [("m", m) for m in modules]
        graph.add_nodes_from(module_nodes, bipartite=0)
        for m in modules:
            for bus in np.flatnonzero(self._matrix[m]):
                graph.add_edge(("m", m), ("b", int(bus)))
        matching = nx.bipartite.maximum_matching(
            graph, top_nodes=[n for n in module_nodes if graph.degree(n) > 0]
        )
        grants: dict[int, int] = {}
        for node, partner in matching.items():
            if node[0] == "b":
                grants[node[1]] = partner[1]
        return grants


class StructureMatchingAssignment(BusAssignmentPolicy):
    """Memoized maximum-matching arbiter for custom incidence structures.

    Functionally equivalent to :class:`MatchingBusAssignment` (same grant
    count: a maximum matching), but deterministic in which buses carry
    which modules and memoized by requested-set bitmask, so long
    simulations over a fixed :class:`StructureNetwork` pay one Kuhn
    matching per *distinct* requested set rather than per cycle.
    """

    def __init__(self, memory_bus_matrix: np.ndarray):
        from repro.topology.structure import MatchingOracle

        memory_bus_matrix = np.asarray(memory_bus_matrix, dtype=bool)
        if memory_bus_matrix.ndim != 2:
            raise ConfigurationError("memory_bus_matrix must be 2-D")
        super().__init__(*memory_bus_matrix.shape)
        self._oracle = MatchingOracle(memory_bus_matrix)

    def assign(
        self, requested_modules: Sequence[int], rng: np.random.Generator
    ) -> dict[int, int]:
        if not requested_modules:
            return {}
        return self._oracle.grants(requested_modules)


# ---------------------------------------------------------------------------
# Priority stage two: criticality-aware bus assignment
# ---------------------------------------------------------------------------


class GrantScheduler:
    """Orders one arbiter's candidates under an arbitration discipline.

    Candidates are ``(module, class)`` pairs over a local module space of
    ``n_slots`` indices.  :meth:`take` returns at most ``capacity`` of
    them in grant order and advances the round-robin pointer (and, for
    ``"wrr"``, the per-class deficit credits) past what was taken.
    Entirely deterministic — the priority backends share instances, so
    their grants agree exactly.
    """

    def __init__(self, n_slots: int, spec: ArbitrationSpec):
        if n_slots < 1:
            raise ConfigurationError(
                f"need at least one slot, got {n_slots}"
            )
        self._n_slots = int(n_slots)
        self._discipline = spec.discipline
        self._weights = spec.resolved_grant_weights()
        self._pointer = 0
        self._credits = [0.0] * spec.n_classes

    def reset(self) -> None:
        """Return pointer and credits to their initial state."""
        self._pointer = 0
        self._credits = [0.0] * len(self._credits)

    def _distance(self, module: int) -> int:
        return (module - self._pointer) % self._n_slots

    def take(
        self, candidates: Sequence[tuple[int, int]], capacity: int
    ) -> list[tuple[int, int]]:
        """Grant up to ``capacity`` candidates, most urgent first."""
        candidates = list(candidates)
        if capacity <= 0 or not candidates:
            return []
        if self._discipline == "wrr":
            queues: dict[int, deque] = {}
            for module, cls in sorted(
                candidates, key=lambda e: self._distance(e[0])
            ):
                queues.setdefault(cls, deque()).append((module, cls))
            for cls in queues:
                self._credits[cls] += self._weights[cls]
            taken: list[tuple[int, int]] = []
            while len(taken) < capacity and queues:
                cls = max(queues, key=lambda c: (self._credits[c], -c))
                taken.append(queues[cls].popleft())
                self._credits[cls] -= 1.0
                if not queues[cls]:
                    del queues[cls]
        elif self._discipline == "strict":
            ordered = sorted(
                candidates,
                key=lambda e: (e[1], self._distance(e[0])),
            )
            taken = ordered[:capacity]
        else:  # "rr" and "proc": class-blind pointer order
            ordered = sorted(
                candidates, key=lambda e: self._distance(e[0])
            )
            taken = ordered[:capacity]
        if taken:
            last = max(taken, key=lambda e: self._distance(e[0]))[0]
            self._pointer = (last + 1) % self._n_slots
        return taken


class PriorityBusPolicy:
    """Base of the criticality-aware stage-two policies.

    ``assign`` takes the stage-one survivors as ``(module, class)``
    pairs sorted by module, plus the buses currently free (not carrying
    a continuing burst), and returns ``{bus: module}`` grants.
    """

    def __init__(self, n_memories: int, n_buses: int):
        self._n_memories = int(n_memories)
        self._n_buses = int(n_buses)

    @property
    def n_buses(self) -> int:
        """Number of buses arbitrated."""
        return self._n_buses

    def assign(
        self,
        candidates: Sequence[tuple[int, int]],
        free_buses: Sequence[int],
    ) -> dict[int, int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Return all scheduling state to its initial value."""


class PriorityFullAssignment(PriorityBusPolicy):
    """Priority ``B``-out-of-``M`` arbiter (full connection or crossbar).

    One scheduler orders all candidates; the first ``len(free_buses)``
    of them are granted onto the free buses in ascending bus order.
    """

    def __init__(
        self, n_memories: int, n_buses: int, spec: ArbitrationSpec
    ):
        super().__init__(n_memories, n_buses)
        self._scheduler = GrantScheduler(n_memories, spec)

    def assign(
        self,
        candidates: Sequence[tuple[int, int]],
        free_buses: Sequence[int],
    ) -> dict[int, int]:
        taken = self._scheduler.take(candidates, len(free_buses))
        return {
            free_buses[rank]: module
            for rank, (module, _cls) in enumerate(taken)
        }

    def reset(self) -> None:
        self._scheduler.reset()


class PriorityGroupedAssignment(PriorityBusPolicy):
    """Per-group priority arbitration for partial bus networks."""

    def __init__(
        self,
        n_memories: int,
        n_buses: int,
        n_groups: int,
        spec: ArbitrationSpec,
    ):
        super().__init__(n_memories, n_buses)
        if n_groups < 1:
            raise ConfigurationError(
                f"need at least one group, got {n_groups}"
            )
        if n_memories % n_groups or n_buses % n_groups:
            raise ConfigurationError(
                f"g={n_groups} must divide M={n_memories} and B={n_buses}"
            )
        self._n_groups = n_groups
        self._modules_per_group = n_memories // n_groups
        self._buses_per_group = n_buses // n_groups
        self._schedulers = [
            GrantScheduler(self._modules_per_group, spec)
            for _ in range(n_groups)
        ]

    def assign(
        self,
        candidates: Sequence[tuple[int, int]],
        free_buses: Sequence[int],
    ) -> dict[int, int]:
        mg = self._modules_per_group
        bg = self._buses_per_group
        grants: dict[int, int] = {}
        for group, scheduler in enumerate(self._schedulers):
            local = [
                (module % mg, cls)
                for module, cls in candidates
                if module // mg == group
            ]
            local_free = [b for b in free_buses if b // bg == group]
            taken = scheduler.take(local, len(local_free))
            for rank, (local_module, _cls) in enumerate(taken):
                grants[local_free[rank]] = group * mg + local_module
        return grants

    def reset(self) -> None:
        for scheduler in self._schedulers:
            scheduler.reset()


class PrioritySingleAssignment(PriorityBusPolicy):
    """Per-bus priority arbitration for single bus-memory connection."""

    def __init__(
        self,
        bus_of_module: Sequence[int],
        n_buses: int,
        spec: ArbitrationSpec,
    ):
        bus_of_module = [int(b) for b in bus_of_module]
        super().__init__(len(bus_of_module), n_buses)
        for module, bus in enumerate(bus_of_module):
            if not 0 <= bus < n_buses:
                raise ConfigurationError(
                    f"module {module} assigned to nonexistent bus {bus}"
                )
        self._bus_of_module = bus_of_module
        self._schedulers = [
            GrantScheduler(self._n_memories, spec) for _ in range(n_buses)
        ]

    def assign(
        self,
        candidates: Sequence[tuple[int, int]],
        free_buses: Sequence[int],
    ) -> dict[int, int]:
        free = set(free_buses)
        by_bus: dict[int, list[tuple[int, int]]] = {}
        for module, cls in candidates:
            if not 0 <= module < self._n_memories:
                raise SimulationError(
                    f"module {module} outside [0, {self._n_memories})"
                )
            bus = self._bus_of_module[module]
            if bus in free:
                by_bus.setdefault(bus, []).append((module, cls))
        grants: dict[int, int] = {}
        for bus in sorted(by_bus):
            taken = self._schedulers[bus].take(by_bus[bus], 1)
            if taken:
                grants[bus] = taken[0][0]
        return grants

    def reset(self) -> None:
        for scheduler in self._schedulers:
            scheduler.reset()


class PriorityKClassAssignment(PriorityBusPolicy):
    """Priority variant of the two-step K-class procedure.

    Step one selects, per memory class ``C_j``, as many candidates as
    the class has *free* connected buses — ordered by the discipline
    over the class's member positions — and packs them from the highest
    free connected bus downward.  Step two resolves per-bus contention
    between memory classes: under ``"strict"``/``"wrr"`` the most
    critical candidate wins, otherwise the round-robin class pointer
    decides (the baseline rule).  With one criticality class and all
    buses free this reproduces the baseline procedure's busy-bus set
    exactly.
    """

    def __init__(
        self,
        class_of_module: Sequence[int],
        n_buses: int,
        spec: ArbitrationSpec,
    ):
        class_of_module = [int(c) for c in class_of_module]
        super().__init__(len(class_of_module), n_buses)
        if not class_of_module:
            raise ConfigurationError("need at least one module")
        n_classes = max(class_of_module)
        if min(class_of_module) < 1:
            raise ConfigurationError("class indices are 1-based")
        if n_classes > n_buses:
            raise ConfigurationError(
                f"K={n_classes} classes require K <= B={n_buses}"
            )
        self._class_of_module = class_of_module
        self._n_mem_classes = n_classes
        self._discipline = spec.discipline
        self._members: list[list[int]] = [[] for _ in range(n_classes + 1)]
        for module, cls in enumerate(class_of_module):
            self._members[cls].append(module)
        self._schedulers = [
            GrantScheduler(max(len(members), 1), spec)
            for members in self._members
        ]
        self._bus_pointers = [0] * n_buses

    def assign(
        self,
        candidates: Sequence[tuple[int, int]],
        free_buses: Sequence[int],
    ) -> dict[int, int]:
        by_mem_class: list[list[tuple[int, int]]] = [
            [] for _ in range(self._n_mem_classes + 1)
        ]
        for module, cls in candidates:
            if not 0 <= module < self._n_memories:
                raise SimulationError(
                    f"module {module} outside [0, {self._n_memories})"
                )
            by_mem_class[self._class_of_module[module]].append(
                (module, cls)
            )

        free_sorted = sorted(free_buses)
        contenders: dict[int, list[tuple[int, int, int]]] = {}
        for mem_class in range(1, self._n_mem_classes + 1):
            entries = by_mem_class[mem_class]
            if not entries:
                continue
            width = mem_class + self._n_buses - self._n_mem_classes
            available = [b for b in free_sorted if b < width]
            if not available:
                continue
            members = self._members[mem_class]
            local = [
                (members.index(module), cls) for module, cls in entries
            ]
            taken = self._schedulers[mem_class].take(
                local, len(available)
            )
            for rank, (position, cls) in enumerate(taken):
                bus = available[len(available) - 1 - rank]
                contenders.setdefault(bus, []).append(
                    (mem_class, members[position], cls)
                )

        grants: dict[int, int] = {}
        for bus, entries in contenders.items():
            if len(entries) == 1:
                grants[bus] = entries[0][1]
                continue
            pointer = self._bus_pointers[bus]
            modulus = self._n_mem_classes + 1

            def order(entry, pointer=pointer, modulus=modulus):
                mem_class, _module, cls = entry
                distance = (mem_class - pointer) % modulus
                if self._discipline in ("strict", "wrr"):
                    return (cls, distance)
                return (distance,)

            mem_class, module, _cls = min(entries, key=order)
            self._bus_pointers[bus] = (mem_class + 1) % modulus
            grants[bus] = module
        return grants

    def reset(self) -> None:
        for scheduler in self._schedulers:
            scheduler.reset()
        self._bus_pointers = [0] * self._n_buses
