"""Admission control: token-bucket rate limiting and queue-depth shedding.

A long-lived query service protects its event loop by refusing work it
cannot absorb *before* the work touches the engine.  Two independent
gates:

* **Token bucket** — sustained rate ``rate_per_second`` with burst
  capacity ``burst``.  An empty bucket sheds with a deterministic
  retry-after hint: exactly the time until the next token accrues, so a
  well-behaved client that waits the hint is admitted (absent new
  contention) rather than bouncing.
* **Queue depth** — when the engine already has ``max_queue_depth``
  requests in flight or queued for a batch window, new work is shed with
  a hint derived from the bucket's refill interval.

Shed requests raise :class:`~repro.exceptions.AdmissionError`; the HTTP
front-end turns that into a 429 envelope with a ``Retry-After`` header,
and :meth:`repro.resilience.RetryPolicy.delay_honoring` folds the hint
into client-side backoff.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.exceptions import AdmissionError, ConfigurationError
from repro.obs.metrics import get_registry

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket with an injectable monotonic clock.

    Tokens accrue continuously at ``rate_per_second`` up to ``burst``;
    :meth:`try_acquire` either takes one token (returning ``0.0``) or
    returns the seconds until one will be available.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_second <= 0:
            raise ConfigurationError(
                f"rate_per_second must be positive, got {rate_per_second}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self._rate = float(rate_per_second)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def try_acquire(self) -> float:
        """Take one token if available; else the wait until one exists.

        Returns ``0.0`` on success, otherwise the deterministic
        retry-after hint in seconds (never negative, never zero on
        refusal).
        """
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return max((1.0 - self._tokens) / self._rate, 1e-9)

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        self._refill()
        return self._tokens


class AdmissionController:
    """Gate requests through the bucket and a queue-depth ceiling.

    Parameters
    ----------
    bucket:
        The rate gate; ``None`` disables rate shedding.
    max_queue_depth:
        Largest in-flight/queued request count the engine will accept
        new work on top of; ``None`` disables depth shedding.
    """

    def __init__(
        self,
        bucket: TokenBucket | None = None,
        max_queue_depth: int | None = None,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._bucket = bucket
        self._max_queue_depth = max_queue_depth

    @property
    def max_queue_depth(self) -> int | None:
        """The configured depth ceiling (``None`` when disabled)."""
        return self._max_queue_depth

    def admit(self, queue_depth: int = 0) -> None:
        """Admit one request or raise :class:`AdmissionError`.

        ``queue_depth`` is the engine's current in-flight plus queued
        count.  Depth is checked first — a saturated engine sheds even
        when the bucket has tokens, so bursts cannot pile unbounded work
        behind the event loop.
        """
        registry = get_registry()
        if (
            self._max_queue_depth is not None
            and queue_depth >= self._max_queue_depth
        ):
            hint = 1.0 / self._bucket._rate if self._bucket else 0.05
            registry.increment("service.shed", reason="queue_depth")
            raise AdmissionError(
                f"queue depth {queue_depth} at limit "
                f"{self._max_queue_depth}",
                retry_after_seconds=hint,
                reason="queue_depth",
            )
        if self._bucket is not None:
            wait = self._bucket.try_acquire()
            if wait > 0.0:
                registry.increment("service.shed", reason="rate")
                raise AdmissionError(
                    "request rate limit exceeded",
                    retry_after_seconds=wait,
                    reason="rate",
                )
