"""Event-level simulation of blocked-request resubmission.

Unlike the drop-model engine (:mod:`repro.simulation.engine`), processors
here *hold* a blocked request and resubmit the same module every cycle
until served — the behaviour assumption 5 of the paper abstracts away.
Used to validate the rate-adjustment approximation of
:mod:`repro.core.resubmission` and to quantify how optimistic the paper's
drop model is at moderate request rates.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arbitration import BusAssignmentPolicy, assignment_for
from repro.arbitration.memory_arbiter import resolve_memory_contention
from repro.core.request_models import RequestModel
from repro.exceptions import SimulationError
from repro.topology.network import MultipleBusNetwork

__all__ = ["ResubmissionResult", "ResubmissionSimulator"]


@dataclasses.dataclass(frozen=True)
class ResubmissionResult:
    """Statistics of one resubmission-mode run.

    Attributes
    ----------
    n_cycles:
        Measured cycles (after warm-up).
    bandwidth:
        Served requests per cycle.
    effective_rate:
        Observed per-processor submission probability (new + retried) —
        comparable to the fixed point ``alpha`` of the analytic model.
    acceptance_probability:
        Served / submitted.
    mean_wait_cycles:
        Average cycles between a request's first submission and service,
        excluding the service cycle itself (0 = accepted immediately).
    p50_wait_cycles / p95_wait_cycles:
        Median and 95th-percentile waits — the tail the drop model hides.
    max_wait_cycles:
        Worst wait observed.
    """

    n_cycles: int
    bandwidth: float
    effective_rate: float
    acceptance_probability: float
    mean_wait_cycles: float
    p50_wait_cycles: float
    p95_wait_cycles: float
    max_wait_cycles: int


class ResubmissionSimulator:
    """Cycle-level simulator with blocked requests held and retried."""

    def __init__(
        self,
        network: MultipleBusNetwork,
        model: RequestModel,
        policy: BusAssignmentPolicy | None = None,
        seed: int | None = None,
    ):
        model.validate()
        if model.n_processors != network.n_processors:
            raise SimulationError(
                f"model has {model.n_processors} processors, network "
                f"{network.n_processors}"
            )
        if model.n_memories != network.n_memories:
            raise SimulationError(
                f"model addresses {model.n_memories} modules, network "
                f"has {network.n_memories}"
            )
        network.validate()
        self._network = network
        self._model = model
        self._policy = policy if policy is not None else assignment_for(network)
        if self._policy.n_buses != network.n_buses:
            raise SimulationError(
                f"policy arbitrates {self._policy.n_buses} buses, network "
                f"has {network.n_buses}"
            )
        self._seed = seed
        cumulative = np.cumsum(model.fraction_matrix(), axis=1)
        cumulative[:, -1] = 1.0
        self._cumulative = cumulative

    def run(self, n_cycles: int, warmup: int = 200) -> ResubmissionResult:
        """Simulate ``warmup + n_cycles`` cycles and return statistics.

        Resubmission couples cycles, so unlike the drop model a warm-up
        period matters: it lets the blocked-processor population reach
        steady state before measurement (default 200 cycles).
        """
        if n_cycles < 1:
            raise SimulationError(f"need at least one cycle, got {n_cycles}")
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup}")
        rng = np.random.default_rng(self._seed)
        self._policy.reset()
        n = self._network.n_processors
        rate = self._model.rate

        pending_module = np.full(n, -1, dtype=np.int64)  # -1: no request
        pending_age = np.zeros(n, dtype=np.int64)

        served = 0
        submitted = 0
        waits: list[int] = []
        measured = 0
        for cycle in range(warmup + n_cycles):
            measuring = cycle >= warmup
            # Free processors draw new requests; blocked ones retry.
            free = pending_module < 0
            issues = rng.random(n) < rate
            draws = rng.random(n)
            for p in np.flatnonzero(free & issues):
                row = self._cumulative[p]
                pending_module[p] = int(
                    np.searchsorted(row, draws[p], side="right")
                )
                pending_age[p] = 0

            requesters = np.flatnonzero(pending_module >= 0)
            if measuring:
                measured += 1
                submitted += len(requesters)
            if len(requesters) == 0:
                continue
            requests = [(int(p), int(pending_module[p])) for p in requesters]
            winners = resolve_memory_contention(
                requests, self._network.n_memories, rng
            )
            grants = self._policy.assign(sorted(winners), rng)
            granted_processors = {winners[module] for module in grants.values()}
            for p in requesters:
                if int(p) in granted_processors:
                    if measuring:
                        served += 1
                        waits.append(int(pending_age[p]))
                    pending_module[p] = -1
                    pending_age[p] = 0
                else:
                    pending_age[p] += 1

        if measured == 0:
            raise SimulationError("no cycles measured")
        return ResubmissionResult(
            n_cycles=measured,
            bandwidth=served / measured,
            effective_rate=submitted / (measured * n),
            acceptance_probability=(served / submitted) if submitted else 0.0,
            mean_wait_cycles=float(np.mean(waits)) if waits else 0.0,
            p50_wait_cycles=float(np.percentile(waits, 50)) if waits else 0.0,
            p95_wait_cycles=float(np.percentile(waits, 95)) if waits else 0.0,
            max_wait_cycles=int(np.max(waits)) if waits else 0,
        )
