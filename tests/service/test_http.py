"""The stdlib HTTP front-end over a real loopback socket.

Every test starts a :class:`~repro.service.http.BandwidthService` on an
ephemeral port, speaks raw HTTP/1.1 over ``asyncio.open_connection``,
and asserts on the full response — status line, headers and the JSON
envelope.  The negative-path tests pin the contract that *no* failure
mode ever emits a traceback: malformed framing, malformed JSON, invalid
parameters, oversized bodies and shed requests all come back as
structured envelopes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    AdmissionController,
    BandwidthService,
    QueryEngine,
    ServiceLimits,
    TokenBucket,
)


async def _roundtrip(port, raw: bytes, keep_reader=None):
    """Send one raw request; return ``(status, headers, body_bytes)``."""
    if keep_reader is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = keep_reader
    writer.write(raw)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    status = int(status_line.split(" ")[1])
    headers = {}
    for line in header_lines:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", 0)))
    if keep_reader is None:
        writer.close()
    return status, headers, body


def _post(path: str, payload, raw_body: bytes | None = None) -> bytes:
    body = raw_body if raw_body is not None else json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def _serve(test, engine: QueryEngine | None = None):
    """Run ``await test(port)`` against a live service, then tear down."""

    async def main():
        service = BandwidthService(engine or QueryEngine())
        port = await service.start()
        try:
            return await test(port)
        finally:
            await service.stop()

    return asyncio.run(main())


def test_query_roundtrip():
    async def scenario(port):
        return await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 16, "M": 16, "B": 8, "r": 0.5,
        }))

    status, headers, body = _serve(scenario)
    envelope = json.loads(body)
    assert status == 200
    assert headers["content-type"] == "application/json"
    assert envelope["ok"] is True
    assert envelope["source"] == "computed"
    assert envelope["result"]["B"] == 8
    assert isinstance(envelope["result"]["bandwidth"], float)


def test_sweep_roundtrip_with_audited_skips():
    async def scenario(port):
        return await _roundtrip(port, _post("/sweep", {
            "scheme": "kclass", "N": 16, "M": 16, "B": [2, 4, 20],
        }))

    status, _, body = _serve(scenario)
    envelope = json.loads(body)
    assert status == 200
    assert sorted(envelope["result"]["values"]) == ["2", "4"]
    (skipped,) = envelope["result"]["skipped"]
    assert skipped["B"] == 20
    assert skipped["reason_code"] == "bus_count_exceeds_modules"


def test_healthz_reports_engine_occupancy():
    async def scenario(port):
        return await _roundtrip(port, b"GET /healthz HTTP/1.1\r\n\r\n")

    status, _, body = _serve(scenario)
    health = json.loads(body)
    assert status == 200
    assert health["ok"] is True
    assert health["inflight"] == 0
    assert health["queue_depth"] == 0


def test_metrics_exports_service_series():
    async def scenario(port):
        await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 8, "B": 4,
        }))
        return await _roundtrip(port, b"GET /metrics HTTP/1.1\r\n\r\n")

    from repro.obs import telemetry

    async def run(port):
        return await scenario(port)

    engine = QueryEngine()

    async def main():
        service = BandwidthService(engine)
        port = await service.start()
        try:
            return await run(port)
        finally:
            await service.stop()

    with telemetry():
        status, headers, body = asyncio.run(main())
    text = body.decode()
    assert status == 200
    assert headers["content-type"] == "text/plain"
    assert 'service_requests{kind="query"} 1' in text
    assert 'service_http_requests{path="/query"} 1' in text


def test_keepalive_serves_multiple_requests_per_connection():
    async def scenario(port):
        reader_writer = await asyncio.open_connection("127.0.0.1", port)
        first = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 16, "B": 8,
        }), keep_reader=reader_writer)
        second = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 16, "B": 8,
        }), keep_reader=reader_writer)
        reader_writer[1].close()
        return first, second

    (s1, _, b1), (s2, _, b2) = _serve(scenario)
    assert s1 == s2 == 200
    one, two = json.loads(b1), json.loads(b2)
    assert one["source"] == "computed"
    assert two["source"] == "cache"
    assert one["result"]["bandwidth"] == two["result"]["bandwidth"]


# ----------------------------------------------------------------------
# Negative paths: structured envelopes, never a traceback
# ----------------------------------------------------------------------


def _assert_envelope(body: bytes, status: int, exc_type: str):
    text = body.decode()
    assert "Traceback" not in text
    envelope = json.loads(text)
    assert envelope["ok"] is False
    assert envelope["error"]["status"] == status
    assert envelope["error"]["type"] == exc_type
    return envelope


def test_connection_close_header_ends_the_connection():
    """``Connection: close`` lets EOF-reading clients finish promptly."""

    async def scenario(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        body = json.dumps({"scheme": "full", "N": 16, "B": 8}).encode()
        writer.write(
            (
                f"POST /query HTTP/1.1\r\nContent-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode() + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=5.0)
        writer.close()
        return raw

    raw = _serve(scenario)
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert json.loads(payload)["ok"] is True


def test_malformed_json_is_400():
    async def scenario(port):
        return await _roundtrip(
            port, _post("/query", None, raw_body=b"{not json!")
        )

    status, _, body = _serve(scenario)
    assert status == 400
    _assert_envelope(body, 400, "ConfigurationError")


def test_nan_rate_in_raw_json_is_400():
    # Python's json.loads accepts bare NaN: the parser must still reject
    async def scenario(port):
        return await _roundtrip(port, _post(
            "/query", None,
            raw_body=b'{"scheme": "full", "N": 8, "B": 4, "r": NaN}',
        ))

    status, _, body = _serve(scenario)
    assert status == 400
    envelope = _assert_envelope(body, 400, "ConfigurationError")
    assert "finite" in envelope["error"]["message"]


def test_invalid_parameters_are_400():
    async def scenario(port):
        return await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 0, "B": 4,
        }))

    status, _, body = _serve(scenario)
    assert status == 400
    _assert_envelope(body, 400, "ConfigurationError")


def test_unknown_route_is_404():
    async def scenario(port):
        return await _roundtrip(port, b"GET /nope HTTP/1.1\r\n\r\n")

    status, _, body = _serve(scenario)
    assert status == 404
    envelope = json.loads(body)
    assert envelope["error"]["type"] == "NotFound"


def test_get_on_query_route_is_400():
    async def scenario(port):
        return await _roundtrip(port, b"GET /query HTTP/1.1\r\n\r\n")

    status, _, body = _serve(scenario)
    assert status == 400
    assert b"requires POST" in body


def test_declared_oversized_body_is_413_without_reading_it():
    engine = QueryEngine(limits=ServiceLimits(max_body_bytes=1024))

    async def scenario(port):
        return await _roundtrip(
            port,
            b"POST /query HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n",
        )

    status, _, body = _serve(scenario, engine)
    assert status == 413
    _assert_envelope(body, 413, "QueryTooLargeError")


def test_oversized_sweep_is_413():
    engine = QueryEngine(limits=ServiceLimits(max_sweep_cells=4))

    async def scenario(port):
        return await _roundtrip(port, _post("/sweep", {
            "scheme": "full", "N": 8, "B": [1, 2, 3, 4, 5],
        }))

    status, _, body = _serve(scenario, engine)
    assert status == 413
    _assert_envelope(body, 413, "QueryTooLargeError")


def test_malformed_request_line_is_400():
    async def scenario(port):
        return await _roundtrip(port, b"BANANAS\r\n\r\n")

    status, _, body = _serve(scenario)
    assert status == 400
    assert b"Traceback" not in body


def test_bad_content_length_is_400():
    async def scenario(port):
        return await _roundtrip(
            port, b"POST /query HTTP/1.1\r\nContent-Length: lots\r\n\r\n"
        )

    status, _, body = _serve(scenario)
    assert status == 400
    assert b"Traceback" not in body


def test_shed_request_is_429_with_retry_after_header():
    engine = QueryEngine(
        admission=AdmissionController(TokenBucket(rate_per_second=0.5,
                                                  burst=1))
    )

    async def scenario(port):
        ok = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 8, "B": 4,
        }))
        shed = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 8, "B": 2,
        }))
        return ok, shed

    (ok_status, _, _), (status, headers, body) = _serve(scenario, engine)
    assert ok_status == 200
    assert status == 429
    envelope = _assert_envelope(body, 429, "AdmissionError")
    assert envelope["error"]["reason"] == "rate"
    assert envelope["error"]["retry_after_s"] > 0.0
    # header hint is the envelope hint rounded up to whole seconds
    assert int(headers["retry-after"]) >= envelope["error"]["retry_after_s"]


def test_parse_failures_do_not_poison_subsequent_requests():
    async def scenario(port):
        bad = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 16, "B": "eight",
        }))
        good = await _roundtrip(port, _post("/query", {
            "scheme": "full", "N": 16, "B": 8,
        }))
        return bad, good

    (bad_status, _, _), (good_status, _, good_body) = _serve(scenario)
    assert bad_status == 400
    assert good_status == 200
    assert json.loads(good_body)["ok"] is True
