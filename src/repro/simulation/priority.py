"""Priority/burst backends: criticality classes and multi-cycle tenure.

This module extends both simulator backends with the two effects of
:class:`~repro.core.priority.ArbitrationSpec`:

* **criticality classes** — each issued request draws a class label from
  the spec's class mix; stage one arbitrates by composite key
  (:func:`~repro.arbitration.memory_arbiter.stage_one_composite`) and
  stage two by the deterministic ``Priority*Assignment`` policies.
* **burst tenure** — a granted request holds its bus *and* its module
  for ``L`` cycles (fixed, or geometric with mean ``L``); requests
  aimed at an in-service module are dropped and counted, preserving the
  paper's blocked-requests-dropped semantics across tenure.

Backend equivalence is *bit-exact by construction*: both backends draw
the four RNG streams (:func:`derive_priority_streams`) with identical
NumPy calls, compute the same composite stage-one keys, and hand the
same candidate lists to the *same* deterministic stage-two policy
classes, so per-class per-cycle grant arrays agree element-wise.  The
shared :func:`_cycle_step` realizes one cycle's bookkeeping for both.

With one class and unit tenure the grant *counts* reduce to the
baseline simulator's exactly: every stage-two policy grants as many
requests onto the same bus positions as its baseline counterpart, and
the request stream (generation stream) is untouched.  The differential
test wall pins this degenerate equality per scheme and per discipline.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.arbitration import PriorityBusPolicy, priority_assignment_for
from repro.arbitration.memory_arbiter import (
    resolve_prioritized,
    stage_one_composite,
)
from repro.core.priority import ArbitrationSpec
from repro.exceptions import SimulationError
from repro.simulation.metrics import SimulationResult, result_from_arrays
from repro.simulation.vectorized import _CHUNK
from repro.topology.network import MultipleBusNetwork
from repro.workloads.generator import ModelRequestGenerator, RequestGenerator

__all__ = [
    "PrioritySimulationResult",
    "derive_priority_streams",
    "run_priority_loop",
    "run_priority_vectorized",
]


def derive_priority_streams(
    seed: int | np.random.SeedSequence | None,
) -> tuple[
    np.random.Generator,
    np.random.Generator,
    np.random.Generator,
    np.random.Generator,
]:
    """Derive (generation, arbitration, class, tenure) RNG streams.

    The first two children coincide with
    :func:`~repro.simulation.engine.derive_streams`'s — a spawned
    child's key depends on its index, not on how many siblings are
    spawned — so a priority run observes the *same request stream* as a
    baseline run of the same seed.  Class labels and burst lengths come
    from the two extra streams, leaving generation and arbitration
    draws undisturbed.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    children = root.spawn(4)
    return tuple(np.random.default_rng(child) for child in children)


@dataclasses.dataclass(frozen=True)
class PrioritySimulationResult:
    """Per-class statistics of one priority/burst simulation run.

    Attributes
    ----------
    total:
        The class-blind :class:`~repro.simulation.metrics.SimulationResult`
        view — ``bandwidth`` counts grant *starts* per cycle and
        ``bus_utilization`` measures occupied bus-cycles, so under
        tenure ``L > 1`` utilization exceeds ``bandwidth / B``.
    discipline, class_weights, tenure, tenure_dist:
        The :class:`~repro.core.priority.ArbitrationSpec` echoed back.
    per_class_bandwidth:
        Grant starts per cycle for each class (sums to
        ``total.bandwidth``).
    per_class_requests_per_cycle:
        Issued requests per cycle per class.
    per_class_acceptance:
        Fraction of each class's issued requests granted a bus.
    per_class_mean_grant_latency:
        Mean bus-cycles a granted request of the class holds its bus
        (``1.0`` exactly when ``tenure == 1``).
    per_class_starved_cycles:
        Measured cycles in which the class had at least one stage-two
        candidate but received no grant — the starvation counter strict
        priority is expected to inflate for low classes.
    per_class_blocked_stage_one:
        Requests that lost their per-module arbitration.
    per_class_blocked_tenure:
        Requests dropped because their module was mid-burst.
    per_class_grant_counts:
        Per-measured-cycle grant starts per class — the backend-agnostic
        fingerprint the equivalence tests compare element-wise.
    """

    total: SimulationResult
    discipline: str
    class_weights: tuple[float, ...]
    tenure: float
    tenure_dist: str
    per_class_bandwidth: tuple[float, ...]
    per_class_requests_per_cycle: tuple[float, ...]
    per_class_acceptance: tuple[float, ...]
    per_class_mean_grant_latency: tuple[float, ...]
    per_class_starved_cycles: tuple[int, ...]
    per_class_blocked_stage_one: tuple[int, ...]
    per_class_blocked_tenure: tuple[int, ...]
    per_class_grant_counts: tuple[tuple[int, ...], ...]

    @property
    def n_classes(self) -> int:
        """Number of criticality classes ``K``."""
        return len(self.class_weights)


class _PriorityAccumulator:
    """Shared per-class counters both priority backends fill."""

    def __init__(
        self,
        n_classes: int,
        n_cycles: int,
        n_processors: int,
        n_memories: int,
        n_buses: int,
    ):
        self.grant_counts = np.zeros((n_classes, n_cycles), dtype=np.int64)
        self.issued = np.zeros(n_classes, dtype=np.int64)
        self.blocked_stage_one = np.zeros(n_classes, dtype=np.int64)
        self.blocked_tenure = np.zeros(n_classes, dtype=np.int64)
        self.starved = np.zeros(n_classes, dtype=np.int64)
        self.latency_sum = np.zeros(n_classes, dtype=np.int64)
        self.bus_busy = np.zeros(n_buses, dtype=np.int64)
        self.module_served = np.zeros(n_memories, dtype=np.int64)
        self.processor_served = np.zeros(n_processors, dtype=np.int64)


class _TenureState:
    """Bus and module occupancy horizons (cycle index, exclusive)."""

    def __init__(self, n_buses: int, n_memories: int):
        self.bus_until = np.zeros(n_buses, dtype=np.int64)
        self.mod_until = np.zeros(n_memories, dtype=np.int64)


def _burst_length(spec: ArbitrationSpec, draw: float | None) -> int:
    """Cycles one grant holds its bus: fixed ``L`` or a geometric draw.

    The geometric inverse transform ``1 + floor(log1p(-u) / log1p(-p))``
    with ``p = 1/L`` has mean ``L`` and support ``{1, 2, ...}``.
    """
    if spec.tenure_dist == "fixed":
        return int(spec.tenure)
    if spec.tenure <= 1.0:
        return 1
    return 1 + int(
        math.floor(math.log1p(-draw) / math.log1p(-1.0 / spec.tenure))
    )


def _class_labels(
    draws: np.ndarray | None, cumulative: np.ndarray, n_classes: int
) -> np.ndarray:
    """Map uniform draws to class labels via the mix's inverse CDF.

    Same idiom as the request generator's destination pick, so label
    streams are reproducible across backends by row-major RNG parity.
    """
    labels = (draws[..., None] >= cumulative).sum(axis=-1)
    return np.minimum(labels, n_classes - 1)


def _cycle_step(
    t: int,
    warmup: int,
    end: int,
    issues_row: np.ndarray,
    chosen_row: np.ndarray,
    labels_row: np.ndarray,
    winner_row: np.ndarray,
    policy: PriorityBusPolicy,
    spec: ArbitrationSpec,
    tenure_row: np.ndarray | None,
    state: _TenureState,
    acc: _PriorityAccumulator,
) -> None:
    """Advance one cycle: drops, stage two, tenure state, counters.

    Both backends call this with identical inputs (same request row,
    same composite stage-one winners, same policy object), so every
    counter they accumulate is bit-identical.
    """
    measured = t >= warmup
    requesters = np.flatnonzero(issues_row)
    modules = chosen_row[requesters]
    labels = labels_row[requesters]
    if measured:
        np.add.at(acc.issued, labels, 1)

    busy_module = state.mod_until > t
    dropped = busy_module[modules]
    if measured and dropped.any():
        np.add.at(acc.blocked_tenure, labels[dropped], 1)

    requested = np.zeros(len(busy_module), dtype=bool)
    requested[modules] = True
    candidate_modules = np.flatnonzero(requested & ~busy_module)
    candidate_classes = labels_row[winner_row[candidate_modules]]
    if measured:
        np.add.at(acc.blocked_stage_one, labels[~dropped], 1)
        np.add.at(acc.blocked_stage_one, candidate_classes, -1)

    candidates = [
        (int(module), int(cls))
        for module, cls in zip(candidate_modules, candidate_classes)
    ]
    free_buses = [int(b) for b in np.flatnonzero(state.bus_until <= t)]
    grants = policy.assign(candidates, free_buses)

    class_of = dict(candidates)
    granted_classes: set[int] = set()
    for bus, module in sorted(grants.items()):
        draw = None if tenure_row is None else float(tenure_row[bus])
        length = _burst_length(spec, draw)
        state.bus_until[bus] = t + length
        state.mod_until[module] = t + length
        overlap = min(t + length, end) - max(t, warmup)
        if overlap > 0:
            acc.bus_busy[bus] += overlap
        if measured:
            cls = class_of[module]
            acc.grant_counts[cls, t - warmup] += 1
            acc.module_served[module] += 1
            acc.processor_served[winner_row[module]] += 1
            acc.latency_sum[cls] += length
            granted_classes.add(cls)
    if measured:
        for cls in set(int(c) for c in candidate_classes) - granted_classes:
            acc.starved[cls] += 1


def _finalize(
    spec: ArbitrationSpec, acc: _PriorityAccumulator
) -> PrioritySimulationResult:
    """Reduce accumulated counters into a result object."""
    n = acc.grant_counts.shape[1]
    grants = acc.grant_counts.sum(axis=1)
    total = result_from_arrays(
        acc.grant_counts.sum(axis=0),
        int(acc.issued.sum()),
        acc.bus_busy,
        acc.module_served,
        acc.processor_served,
    )
    acceptance = tuple(
        float(g / i) if i else 0.0 for g, i in zip(grants, acc.issued)
    )
    latency = tuple(
        float(s / g) if g else 0.0 for s, g in zip(acc.latency_sum, grants)
    )
    return PrioritySimulationResult(
        total=total,
        discipline=spec.discipline,
        class_weights=spec.class_weights,
        tenure=spec.tenure,
        tenure_dist=spec.tenure_dist,
        per_class_bandwidth=tuple(float(g / n) for g in grants),
        per_class_requests_per_cycle=tuple(
            float(i / n) for i in acc.issued
        ),
        per_class_acceptance=acceptance,
        per_class_mean_grant_latency=latency,
        per_class_starved_cycles=tuple(int(s) for s in acc.starved),
        per_class_blocked_stage_one=tuple(
            int(b) for b in acc.blocked_stage_one
        ),
        per_class_blocked_tenure=tuple(
            int(b) for b in acc.blocked_tenure
        ),
        per_class_grant_counts=tuple(
            tuple(int(g) for g in row) for row in acc.grant_counts
        ),
    )


def run_priority_loop(
    network: MultipleBusNetwork,
    generator: RequestGenerator,
    spec: ArbitrationSpec,
    n_cycles: int,
    warmup: int,
    generation_rng: np.random.Generator,
    arbitration_rng: np.random.Generator,
    class_rng: np.random.Generator,
    tenure_rng: np.random.Generator,
) -> PrioritySimulationResult:
    """Reference per-cycle priority/burst backend."""
    policy = priority_assignment_for(network, spec)
    policy.reset()
    n_processors = network.n_processors
    n_memories = network.n_memories
    n_buses = network.n_buses
    n_classes = spec.n_classes
    cumulative = np.cumsum(np.asarray(spec.class_weights))
    geometric = spec.tenure_dist == "geometric"
    end = warmup + n_cycles
    acc = _PriorityAccumulator(
        n_classes, n_cycles, n_processors, n_memories, n_buses
    )
    state = _TenureState(n_buses, n_memories)
    zero_labels = np.zeros(n_processors, dtype=np.int64)
    for t, requests in enumerate(generator.cycles(end, generation_rng)):
        keys = arbitration_rng.random(n_processors)
        if n_classes > 1:
            labels_row = _class_labels(
                class_rng.random(n_processors), cumulative, n_classes
            )
        else:
            labels_row = zero_labels
        tenure_row = tenure_rng.random(n_buses) if geometric else None
        composite = stage_one_composite(keys, labels_row, spec)
        winners = resolve_prioritized(requests, n_memories, composite)
        winner_row = np.full(n_memories, -1, dtype=np.int64)
        for module, processor in winners.items():
            winner_row[module] = processor
        issues_row = np.zeros(n_processors, dtype=bool)
        chosen_row = np.zeros(n_processors, dtype=np.int64)
        for processor, module in requests:
            issues_row[processor] = True
            chosen_row[processor] = module
        _cycle_step(
            t,
            warmup,
            end,
            issues_row,
            chosen_row,
            labels_row,
            winner_row,
            policy,
            spec,
            tenure_row,
            state,
            acc,
        )
    return _finalize(spec, acc)


def run_priority_vectorized(
    network: MultipleBusNetwork,
    generator: ModelRequestGenerator,
    spec: ArbitrationSpec,
    n_cycles: int,
    warmup: int,
    generation_rng: np.random.Generator,
    arbitration_rng: np.random.Generator,
    class_rng: np.random.Generator,
    tenure_rng: np.random.Generator,
) -> PrioritySimulationResult:
    """Chunked priority/burst backend.

    Request generation, class labels, composite keys and stage-one
    winners resolve as whole-chunk array operations (a request dropped
    for a busy module never contends at another module, so whole-chunk
    stage one stays valid under tenure); the per-cycle remainder —
    stage two through the deterministic priority policies plus tenure
    state — is inherently sequential and shares :func:`_cycle_step`
    with the loop backend.
    """
    if not isinstance(generator, ModelRequestGenerator):
        raise SimulationError(
            "the vectorized priority backend needs a request-model "
            f"workload, got {type(generator).__name__}"
        )
    policy = priority_assignment_for(network, spec)
    policy.reset()
    n_processors = network.n_processors
    n_memories = network.n_memories
    n_buses = network.n_buses
    n_classes = spec.n_classes
    cumulative = np.cumsum(np.asarray(spec.class_weights))
    geometric = spec.tenure_dist == "geometric"
    total = warmup + n_cycles
    end = total
    acc = _PriorityAccumulator(
        n_classes, n_cycles, n_processors, n_memories, n_buses
    )
    state = _TenureState(n_buses, n_memories)
    processors = np.arange(n_processors)

    produced = 0
    while produced < total:
        chunk = min(_CHUNK, total - produced)
        issues, chosen = generator.request_arrays(chunk, generation_rng)
        keys = arbitration_rng.random((chunk, n_processors))
        if n_classes > 1:
            labels = _class_labels(
                class_rng.random((chunk, n_processors)),
                cumulative,
                n_classes,
            )
        else:
            labels = np.zeros((chunk, n_processors), dtype=np.int64)
        tenure_draws = (
            tenure_rng.random((chunk, n_buses)) if geometric else None
        )

        composite = stage_one_composite(keys, labels, spec)
        flat = np.arange(chunk)[:, None] * n_memories + chosen
        active_flat = flat[issues]
        max_composite = np.full(chunk * n_memories, -np.inf)
        np.maximum.at(max_composite, active_flat, composite[issues])
        winning = issues & (composite == max_composite[flat])
        winner = np.full(chunk * n_memories, -1, dtype=np.int64)
        winner[flat[winning]] = np.broadcast_to(
            processors, (chunk, n_processors)
        )[winning]
        winner = winner.reshape(chunk, n_memories)

        for i in range(chunk):
            _cycle_step(
                produced + i,
                warmup,
                end,
                issues[i],
                chosen[i],
                labels[i],
                winner[i],
                policy,
                spec,
                None if tenure_draws is None else tenure_draws[i],
                state,
                acc,
            )
        produced += chunk
    return _finalize(spec, acc)
