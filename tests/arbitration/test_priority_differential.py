"""Differential wall: degenerate priority arbitration is the paper model.

With one criticality class and unit tenure, every priority discipline
must collapse to exactly the arbitration the paper describes — not
approximately, *bit-identically*.  These tests pin that collapse across
all five connection schemes and both paper request models along three
independent routes:

* the priority simulator's per-cycle grant counts ``==`` the class-blind
  simulator's for the same seed (the stage-one winner *identity* may
  differ between arbiters, but under a work-conserving arbiter the grant
  counts are a pure function of the request stream);
* the loop and vectorized priority backends agree array-for-array; and
* the degenerate analytic split reproduces eqs. 1-12 within 1e-9.
"""

from __future__ import annotations

import pytest

from repro.analysis.batch import priority_class_profile
from repro.analysis.evaluate import analytic_bandwidth
from repro.analysis.sweep import paper_model_pair
from repro.core.priority import DISCIPLINES, ArbitrationSpec
from repro.simulation.engine import MultiprocessorSimulator
from repro.topology.factory import build_network

SCHEMES = [
    ("full", {}),
    ("single", {}),
    ("partial", {"n_groups": 2}),
    ("kclass", {}),
    ("crossbar", {}),
]
N = 8
B = 4
CYCLES = 1500
SEED = 404

_BASELINES: dict[tuple, object] = {}


def _network(scheme: str, kwargs: dict):
    n_buses = N if scheme == "crossbar" else B
    return build_network(scheme, N, N, n_buses, **kwargs)


def _baseline(scheme, kwargs, model_name, rate):
    """Class-blind loop-backend run, cached across parametrizations."""
    key = (scheme, model_name, rate)
    if key not in _BASELINES:
        model = paper_model_pair(N, rate)[model_name]
        _BASELINES[key] = MultiprocessorSimulator(
            _network(scheme, kwargs), model, seed=SEED, backend="loop"
        ).run(CYCLES)
    return _BASELINES[key]


def _priority_run(scheme, kwargs, model_name, rate, spec, backend):
    model = paper_model_pair(N, rate)[model_name]
    return MultiprocessorSimulator(
        _network(scheme, kwargs), model, seed=SEED, backend=backend,
        spec=spec,
    ).run(CYCLES)


@pytest.mark.parametrize("discipline", DISCIPLINES)
@pytest.mark.parametrize("model_name", ["hier", "unif"])
@pytest.mark.parametrize("scheme,kwargs", SCHEMES, ids=lambda v: str(v))
def test_degenerate_simulation_matches_baseline(
    scheme, kwargs, model_name, discipline
):
    """K = 1, L = 1 under any discipline == today's simulator, ``==``."""
    spec = ArbitrationSpec(discipline=discipline)
    assert spec.is_degenerate
    baseline = _baseline(scheme, kwargs, model_name, 1.0)
    loop = _priority_run(scheme, kwargs, model_name, 1.0, spec, "loop")
    vec = _priority_run(
        scheme, kwargs, model_name, 1.0, spec, "vectorized"
    )

    # Route 1: the priority engine reproduces the paper-model simulator.
    assert loop.total.grant_counts == baseline.grant_counts
    assert loop.total.bandwidth == baseline.bandwidth
    assert loop.total.bandwidth_ci95 == baseline.bandwidth_ci95
    assert loop.total.bus_utilization == baseline.bus_utilization
    assert loop.total.acceptance_probability == (
        baseline.acceptance_probability
    )

    # Route 2: both priority backends agree array-for-array.
    assert vec.per_class_grant_counts == loop.per_class_grant_counts
    assert vec.per_class_starved_cycles == loop.per_class_starved_cycles
    assert vec.per_class_blocked_tenure == loop.per_class_blocked_tenure
    assert vec.total.grant_counts == baseline.grant_counts

    # The single class carries the whole system.
    assert loop.n_classes == 1
    assert loop.per_class_bandwidth == (loop.total.bandwidth,)
    assert loop.per_class_blocked_tenure == (0,)
    assert loop.per_class_mean_grant_latency == (1.0,)


@pytest.mark.parametrize("rate", [0.5, 1.0])
@pytest.mark.parametrize("discipline", DISCIPLINES)
@pytest.mark.parametrize("model_name", ["hier", "unif"])
@pytest.mark.parametrize("scheme,kwargs", SCHEMES, ids=lambda v: str(v))
def test_degenerate_analytics_match_closed_forms(
    scheme, kwargs, model_name, discipline, rate
):
    """Degenerate class split reproduces eqs. 1-12 within 1e-9."""
    network = _network(scheme, kwargs)
    model = paper_model_pair(N, rate)[model_name]
    profile = priority_class_profile(
        scheme,
        N,
        N,
        network.n_buses,
        model,
        discipline=discipline,
        **kwargs,
    )
    expected = analytic_bandwidth(network, model)
    assert profile.total == pytest.approx(expected, abs=1e-9)
    assert profile.per_class == (profile.total,)
    assert profile.tenure == 1.0
    assert profile.effective_buses == network.n_buses


@pytest.mark.parametrize("model_name", ["hier", "unif"])
@pytest.mark.parametrize("scheme,kwargs", SCHEMES, ids=lambda v: str(v))
def test_multiclass_totals_stay_work_conserving(scheme, kwargs, model_name):
    """Class weights alone (L = 1) never change the total grant stream."""
    baseline = _baseline(scheme, kwargs, model_name, 1.0)
    spec = ArbitrationSpec(
        discipline="strict", class_weights=(0.25, 0.75)
    )
    result = _priority_run(scheme, kwargs, model_name, 1.0, spec, "loop")
    assert result.total.grant_counts == baseline.grant_counts
    assert sum(result.per_class_bandwidth) == pytest.approx(
        result.total.bandwidth, abs=1e-12
    )
