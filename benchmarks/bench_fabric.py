"""Fabric scaling harness: sharded workers vs the in-process executor.

Runs one CPU-heavy simulated sweep (E9-style grid: ``full`` scheme,
four bus counts x four request rates x both request models) through

* the single-process executor (``parallel_map``, the ground truth), and
* the fabric at 1, 2 and 4 workers,

and writes ``BENCH_fabric.json`` with wall-clock, speedup and
per-worker efficiency for each width, plus the bit-identity verdict.

Two properties are asserted unconditionally:

* every fabric run returns records ``==`` the serial ones (the
  deterministic-sharding contract), and
* the report carries one shard per worker with no retries or deaths.

The >= 2.5x speedup floor at 4 workers is CPU-bound and therefore only
asserted when the machine actually exposes >= 4 usable cores; on
smaller boxes the numbers are still recorded (with
``floor_asserted: false``) so the artifact always documents what this
host could show.

Run directly (``python -m pytest benchmarks/bench_fabric.py -s``); the
CI job uploads the JSON report as an artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.parallel import (
    _simulated_cell,
    parallel_map,
    sweep_cell_specs,
)
from repro.fabric import FabricConfig, FabricCoordinator, FabricJob

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"

SPEEDUP_FLOOR = 2.5
FLOOR_WORKERS = 4

WORKLOAD = dict(
    scheme="full",
    N=24,
    bus_counts=[2, 4, 6, 8],
    rates=[0.25, 0.5, 0.75, 1.0],
    n_cycles=120_000,
    seed=7,
    backend="auto",
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_fabric_scaling():
    specs = sweep_cell_specs(
        WORKLOAD["scheme"],
        WORKLOAD["N"],
        bus_counts=WORKLOAD["bus_counts"],
        rates=WORKLOAD["rates"],
        n_cycles=WORKLOAD["n_cycles"],
        seed=WORKLOAD["seed"],
        backend=WORKLOAD["backend"],
    )
    t0 = time.perf_counter()
    serial = parallel_map(_simulated_cell, specs)
    serial_seconds = time.perf_counter() - t0

    job = FabricJob(kind="sweep", params=dict(WORKLOAD))
    widths = {}
    bit_identical = True
    for n_workers in (1, 2, 4):
        t0 = time.perf_counter()
        report = FabricCoordinator(
            job, FabricConfig(n_workers=n_workers)
        ).run()
        elapsed = time.perf_counter() - t0
        identical = report.records == serial
        bit_identical = bit_identical and identical
        assert identical, f"{n_workers}-worker fabric diverged from serial"
        assert report.retries == 0 and report.worker_deaths == []
        assert len(report.shard_map) == n_workers
        speedup = serial_seconds / elapsed
        widths[str(n_workers)] = {
            "seconds": round(elapsed, 4),
            "speedup": round(speedup, 3),
            "efficiency": round(speedup / n_workers, 3),
        }

    cores = _usable_cores()
    floor_asserted = cores >= FLOOR_WORKERS
    section = {
        "workload": {
            "scheme": WORKLOAD["scheme"],
            "N": WORKLOAD["N"],
            "cells": len(serial),
            "n_cycles": WORKLOAD["n_cycles"],
            "seed": WORKLOAD["seed"],
        },
        "serial_seconds": round(serial_seconds, 4),
        "workers": widths,
        "bit_identical": bit_identical,
        "cores": cores,
        "floor": SPEEDUP_FLOOR,
        "floor_asserted": floor_asserted,
    }
    RESULT_PATH.write_text(
        json.dumps(section, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nfabric scaling: {json.dumps(section)}")

    if floor_asserted:
        achieved = widths[str(FLOOR_WORKERS)]["speedup"]
        assert achieved >= SPEEDUP_FLOOR, (
            f"{FLOOR_WORKERS}-worker fabric only {achieved:.2f}x over the "
            f"single-process executor (floor {SPEEDUP_FLOOR}x; see "
            f"{RESULT_PATH.name})"
        )
