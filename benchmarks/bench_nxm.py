"""E11 benchmark: the N x M table the paper describes but never prints."""

from repro.experiments import nxm


def test_nxm(benchmark, reproduces):
    result = benchmark(nxm.run)
    reproduces(result)
    assert {r["M"] for r in result.records} == {8, 16, 32}
