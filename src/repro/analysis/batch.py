"""Whole-grid analytic kernels: every bus count from one pmf.

The per-cell scalar path evaluates eqs. (4), (6), (9) and (12) one
``(scheme, B, r, model)`` cell at a time, recomputing the request-count
pmf — which depends only on ``(M, X)`` — for every cell, and walking a
Python loop over ``B``.  This module evaluates *vectors* of bus counts
from a single cached pmf:

* :func:`tail_excess_all_buses` — the subtracted term of eq. (4) for
  every cap at once via one reversed cumulative sum (``E[max(I - c, 0)]
  = sum_{k > c} P(I >= k)``), so a full ``B = 1..N`` sweep is O(M)
  instead of O(N * M).
* :func:`bandwidth_full_batch` / :func:`bandwidth_partial_batch` /
  :func:`bandwidth_single_batch` / :func:`bandwidth_kclass_batch` — the
  four schemes' closed forms over a vector of bus counts.
* :func:`binomial_pmf_grid` — the 2-D ``(rate, count)`` pmf matrix for a
  vector of request probabilities, one broadcast ``gammaln`` evaluation.
* :func:`scheme_bus_profile` — the dispatch facade mirroring
  :func:`repro.analysis.evaluate.analytic_bandwidth` (homogeneous and
  heterogeneous paths) for a whole bus-count vector, without building a
  network object per cell; structurally invalid counts are reported as
  :class:`SkippedCell` records instead of silently disappearing.

Every kernel matches its scalar counterpart to well below 1e-9 (the
property suite in ``tests/analysis/test_batch.py`` pins 1e-12), so the
golden table values are unchanged.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np
from scipy.special import gammaln

from repro.analysis.evaluate import analytic_bandwidth
from repro.core.binomial import validate_probability
from repro.core.cache import cached_binomial_pmf, cached_poisson_binomial_pmf
from repro.core.kclasses import bandwidth_kclass, class_request_pmfs
from repro.core.priority import (
    DISCIPLINES,
    crossbar_tenure_bandwidth,
    cumulative_weights,
    effective_bandwidth,
    monotone_class_split,
    proportional_split,
    validate_class_weights,
    validate_tenure,
)
from repro.core.request_models import RequestModel
from repro.exceptions import ConfigurationError, ModelError
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.topology.factory import build_network, equal_class_sizes

__all__ = [
    "tail_excess_all_buses",
    "binomial_pmf_grid",
    "bandwidth_full_batch",
    "bandwidth_partial_batch",
    "bandwidth_single_batch",
    "bandwidth_kclass_batch",
    "SkippedCell",
    "BusProfile",
    "valid_bus_counts",
    "scheme_bus_profile",
    "PriorityProfile",
    "priority_class_profile",
    "GridCell",
    "evaluate_cells",
]


# ----------------------------------------------------------------------
# Distribution kernels
# ----------------------------------------------------------------------


def tail_excess_all_buses(pmf: np.ndarray) -> np.ndarray:
    """Return ``E[max(I - c, 0)]`` for every cap ``c = 0..M`` at once.

    Element ``c`` equals :func:`repro.core.binomial.tail_excess(pmf, c)`;
    one reversed cumulative sum replaces ``M`` independent O(M) tail
    sums, using the identity ``E[max(I - c, 0)] = sum_{k>c} P(I >= k)``.

    Accepts a pmf vector of length ``M + 1`` or a 2-D matrix of row pmfs
    (e.g. from :func:`binomial_pmf_grid`); caps index the last axis.
    """
    pmf = np.asarray(pmf, dtype=float)
    # tail[..., k] = P(I >= k)
    tail = np.cumsum(pmf[..., ::-1], axis=-1)[..., ::-1]
    excess = np.zeros_like(pmf)
    if pmf.shape[-1] > 1:
        excess[..., :-1] = np.cumsum(tail[..., :0:-1], axis=-1)[..., ::-1]
    return excess


def binomial_pmf_grid(n: int, ps: Sequence[float]) -> np.ndarray:
    """Return the ``(len(ps), n + 1)`` matrix of ``Binomial(n, p)`` pmfs.

    Row ``k`` equals ``binomial_pmf(n, ps[k])``: the same log-space
    evaluation, broadcast over the probability vector so a rate sweep
    costs one ``gammaln`` pass instead of one per rate.
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    ps = np.asarray(
        [validate_probability(float(p), "p") for p in ps], dtype=float
    )
    if n == 0:
        return np.ones((ps.size, 1))
    grid = np.zeros((ps.size, n + 1))
    i = np.arange(n + 1)
    interior = (ps > 0.0) & (ps < 1.0)
    if np.any(interior):
        p = ps[interior][:, None]
        log_comb = gammaln(n + 1) - gammaln(i + 1) - gammaln(n - i + 1)
        log_pmf = log_comb + i * np.log(p) + (n - i) * np.log1p(-p)
        rows = np.exp(log_pmf)
        grid[interior] = rows / rows.sum(axis=1, keepdims=True)
    grid[ps == 0.0, 0] = 1.0
    grid[ps == 1.0, n] = 1.0
    return grid


# ----------------------------------------------------------------------
# Per-scheme batch kernels
# ----------------------------------------------------------------------


def _bus_vector(bus_counts: Sequence[int]) -> np.ndarray:
    bus = np.asarray(list(bus_counts), dtype=int)
    if bus.size and int(bus.min()) < 1:
        raise ConfigurationError(
            f"need at least one bus, got {int(bus.min())}"
        )
    return bus


def bandwidth_full_batch(
    n_memories: int,
    bus_counts: Sequence[int],
    request_probability: float,
) -> np.ndarray:
    """Eq. (4) for a vector of bus counts from one cached pmf.

    >>> import numpy as np
    >>> from repro.core.bandwidth import bandwidth_full
    >>> batch = bandwidth_full_batch(8, [2, 4, 8], 0.65639)
    >>> bool(np.allclose(batch, [bandwidth_full(8, b, 0.65639)
    ...                          for b in (2, 4, 8)]))
    True
    """
    bus = _bus_vector(bus_counts)
    x = validate_probability(request_probability, "X")
    if n_memories < 1:
        raise ConfigurationError(
            f"need at least one memory module, got {n_memories}"
        )
    excess = tail_excess_all_buses(cached_binomial_pmf(n_memories, x))
    return n_memories * x - excess[np.minimum(bus, n_memories)]


def bandwidth_partial_batch(
    n_memories: int,
    bus_counts: Sequence[int],
    n_groups: int,
    request_probability: float,
) -> np.ndarray:
    """Eq. (9) for a vector of bus counts, all divisible by ``g``."""
    bus = _bus_vector(bus_counts)
    if n_groups < 1:
        raise ConfigurationError(f"need at least one group, got {n_groups}")
    if n_memories % n_groups:
        raise ConfigurationError(
            f"g={n_groups} must divide the module count M={n_memories}"
        )
    if bus.size and np.any(bus % n_groups):
        bad = int(bus[np.flatnonzero(bus % n_groups)[0]])
        raise ConfigurationError(
            f"g={n_groups} must divide the bus count B={bad}"
        )
    per_group = n_memories // n_groups
    x = validate_probability(request_probability, "X")
    excess = tail_excess_all_buses(cached_binomial_pmf(per_group, x))
    per = per_group * x - excess[np.minimum(bus // n_groups, per_group)]
    return n_groups * per


def bandwidth_single_batch(
    n_memories: int,
    bus_counts: Sequence[int],
    request_probability: float,
) -> np.ndarray:
    """Eq. (6) with the balanced module layout, for a vector of bus counts.

    Mirrors :class:`~repro.topology.single.SingleBusMemoryNetwork`'s
    default assignment: ``M % B`` buses carry ``M // B + 1`` modules, the
    rest ``M // B``.
    """
    bus = _bus_vector(bus_counts)
    if n_memories < 1:
        raise ConfigurationError(
            f"need at least one memory module, got {n_memories}"
        )
    if bus.size and int(bus.max()) > n_memories:
        raise ConfigurationError(
            f"B={int(bus.max())} exceeds M={n_memories}"
        )
    x = validate_probability(request_probability, "X")
    base = n_memories // bus
    extra = n_memories % bus
    if x < 1.0:
        log_miss = np.log1p(-x)
        y_base = -np.expm1(base * log_miss)
        y_next = -np.expm1((base + 1) * log_miss)
    else:
        y_base = (base > 0).astype(float)
        y_next = np.ones_like(base, dtype=float)
    return extra * y_next + (bus - extra) * y_base


def bandwidth_kclass_batch(
    class_sizes: Sequence[int],
    bus_counts: Sequence[int],
    request_probability: float | Sequence[float],
) -> np.ndarray:
    """Eq. (12) for fixed classes over a vector of bus counts ``B >= K``.

    Eq. (11)'s busy probability for bus ``i`` under ``B`` buses depends
    only on ``a = i + K - B``, so the ``Y`` values for every bus of every
    requested count are one table indexed by ``a``, and each bandwidth is
    a suffix sum of that table — O(B_max * K) for the whole vector
    instead of per count.
    """
    bus = _bus_vector(bus_counts)
    sizes = [int(s) for s in class_sizes]
    if not sizes:
        raise ConfigurationError("need at least one memory class")
    if any(s < 0 for s in sizes):
        raise ConfigurationError(f"class sizes must be non-negative: {sizes}")
    if sum(sizes) < 1:
        raise ConfigurationError("classes must hold at least one module")
    n_classes = len(sizes)
    if bus.size == 0:
        return np.empty(0)
    if int(bus.min()) < n_classes:
        raise ConfigurationError(
            f"K={n_classes} classes require K <= B={int(bus.min())} buses"
        )
    cdfs = [
        np.cumsum(pmf)
        for pmf in class_request_pmfs(sizes, request_probability)
    ]
    b_max = int(bus.max())
    # ys[t] = Y(a) with a = K - b_max + 1 + t; under B buses, bus i has
    # a = i + K - B, so its Y values are the last B entries of ys.
    ys = np.empty(b_max)
    for t, a in enumerate(range(n_classes - b_max + 1, n_classes + 1)):
        idle = 1.0
        for j in range(max(a, 1), n_classes + 1):
            cdf = cdfs[j - 1]
            idle *= float(cdf[min(j - a, len(cdf) - 1)])
        ys[t] = 1.0 - idle
    suffix = np.cumsum(ys[::-1])  # suffix[b - 1] = sum of the last b Y's
    return suffix[bus - 1]


# ----------------------------------------------------------------------
# Validity and the dispatch facade
# ----------------------------------------------------------------------


#: ``(substring of the reason message, stable machine-readable code)``
#: pairs, checked in order; telemetry counts skips by these codes.
_REASON_CODES = (
    ("at least one bus", "nonpositive_bus_count"),
    ("exceeds M=", "bus_count_exceeds_modules"),
    ("divide the module count", "groups_divide_modules"),
    ("divide the bus count", "groups_divide_buses"),
    ("classes require", "classes_exceed_buses"),
    ("sum to", "class_sizes_sum_mismatch"),
    ("pins B=", "generator_pins_bus_count"),
    ("pins M=", "generator_pins_module_count"),
)


@dataclasses.dataclass(frozen=True)
class SkippedCell:
    """One structurally invalid ``(scheme, B)`` sweep cell and why."""

    scheme: str
    n_buses: int
    reason: str

    @property
    def reason_code(self) -> str:
        """Stable machine-readable category of :attr:`reason`.

        Used as the telemetry label on ``analysis.cells_skipped`` so
        manifests aggregate skips by cause rather than by message text.
        """
        for fragment, code in _REASON_CODES:
            if fragment in self.reason:
                return code
        return "other"


@dataclasses.dataclass
class BusProfile:
    """Bandwidth per feasible bus count, plus the audited skips."""

    values: dict[int, float]
    skipped: list[SkippedCell]


#: Scheme-specific kwargs each batch path understands; anything else
#: falls back to per-cell construction through the topology objects.
#: ``custom`` additionally takes batch-layer-only knobs: ``fallback``
#: ("auto" | "exact" | "simulate") and ``sim_cycles``.
_BATCHABLE_KWARGS = {
    "full": frozenset(),
    "single": frozenset(),
    "partial": frozenset({"n_groups"}),
    "kclass": frozenset({"class_sizes"}),
    "crossbar": frozenset(),
    "custom": frozenset({"generator", "fallback", "sim_cycles"}),
}

#: Above this module count the "auto" fallback for unrecognized custom
#: structures switches from exact enumeration (O(2^M)) to simulation.
_EXACT_FALLBACK_MAX = 12


def valid_bus_counts(
    scheme: str,
    n_memories: int,
    bus_counts: Sequence[int],
    **network_kwargs,
) -> tuple[list[int], list[SkippedCell]]:
    """Split ``bus_counts`` into feasible counts and audited skips.

    Mirrors the constructor validation of the topology classes (the
    structural source of truth) without instantiating one network per
    count: base ``1 <= B <= M``, group divisibility for ``partial``,
    ``K <= B`` for explicit K-class sizes.  ``crossbar`` ignores ``B``
    entirely, matching :func:`repro.topology.factory.build_network`.
    """
    valid: list[int] = []
    skipped: list[SkippedCell] = []
    n_groups = network_kwargs.get("n_groups", 2)
    class_sizes = network_kwargs.get("class_sizes")
    for b in bus_counts:
        b = int(b)
        if scheme == "crossbar":
            valid.append(b)
            continue
        if b < 1:
            skipped.append(
                SkippedCell(scheme, b, f"need at least one bus, got {b}")
            )
            continue
        if b > n_memories:
            skipped.append(
                SkippedCell(
                    scheme,
                    b,
                    f"B={b} exceeds M={n_memories}; buses beyond the "
                    "module count can never carry a transfer",
                )
            )
            continue
        if scheme == "partial":
            if n_memories % n_groups:
                skipped.append(
                    SkippedCell(
                        scheme,
                        b,
                        f"g={n_groups} must divide the module count "
                        f"M={n_memories}",
                    )
                )
                continue
            if b % n_groups:
                skipped.append(
                    SkippedCell(
                        scheme,
                        b,
                        f"g={n_groups} must divide the bus count B={b}",
                    )
                )
                continue
        if scheme == "kclass" and class_sizes is not None:
            k = len(list(class_sizes))
            if k > b:
                skipped.append(
                    SkippedCell(
                        scheme, b, f"K={k} classes require K <= B={b}"
                    )
                )
                continue
        valid.append(b)
    return valid, skipped


def _symmetric_x(model: RequestModel) -> float | None:
    try:
        return model.symmetric_module_probability()
    except ModelError:
        return None


def _fallback_profile(
    scheme: str,
    n_processors: int,
    n_memories: int,
    bus_counts: Sequence[int],
    model: RequestModel,
    **network_kwargs,
) -> BusProfile:
    """Per-cell path for configurations the batch kernels do not cover.

    Still benefits from the shared pmf cache underneath the scalar
    formulas, and reports skips instead of dropping them.
    """
    values: dict[int, float] = {}
    skipped: list[SkippedCell] = []
    for b in bus_counts:
        try:
            network = build_network(
                scheme, n_processors, n_memories, int(b), **network_kwargs
            )
        except ConfigurationError as exc:
            skipped.append(SkippedCell(scheme, int(b), str(exc)))
            continue
        values[int(b)] = analytic_bandwidth(network, model)
    return BusProfile(values=values, skipped=skipped)


def _kclass_class_probabilities(
    class_sizes: Sequence[int], xs: np.ndarray
) -> list[float]:
    """Per-class ``X_j`` from per-module probabilities, contiguous blocks.

    Mirrors the class-uniformity requirement of
    :func:`repro.analysis.evaluate.analytic_bandwidth` for the default
    contiguous class assignment.
    """
    class_xs: list[float] = []
    offset = 0
    for j, size in enumerate(class_sizes, start=1):
        members = xs[offset : offset + size]
        offset += size
        if members.size == 0:
            class_xs.append(0.0)
            continue
        if float(members.max() - members.min()) > 1e-9:
            raise ModelError(
                f"modules of class C_{j} have differing request "
                "probabilities; eq. (11) requires class-uniform X"
            )
        class_xs.append(float(members.mean()))
    return class_xs


def scheme_bus_profile(
    scheme: str,
    n_processors: int,
    n_memories: int,
    bus_counts: Sequence[int],
    model: RequestModel,
    **network_kwargs,
) -> BusProfile:
    """Bandwidth of one scheme for a whole bus-count vector.

    The batched counterpart of calling
    :func:`~repro.analysis.evaluate.analytic_bandwidth` per bus count on
    networks from :func:`~repro.topology.factory.build_network`: the same
    homogeneous/heterogeneous dispatch and the same feasibility rules,
    but each scheme's cells all derive from one cached pmf and one
    whole-grid kernel, with no per-cell network construction.  Exotic
    kwargs (``bus_of_module``, ``class_of_module``, ...) fall back to the
    per-cell path so behaviour never diverges from the topology objects.

    Runs inside an ``analysis.profile`` telemetry span; evaluated and
    skipped cells feed the ``analysis.cells_evaluated`` /
    ``analysis.cells_skipped`` counters (skips labelled by
    :attr:`SkippedCell.reason_code`).
    """
    with span("analysis.profile", scheme=scheme):
        profile = _scheme_bus_profile(
            scheme, n_processors, n_memories, bus_counts, model,
            **network_kwargs,
        )
    registry = get_registry()
    registry.increment(
        "analysis.cells_evaluated", len(profile.values), scheme=scheme
    )
    for cell in profile.skipped:
        registry.increment(
            "analysis.cells_skipped",
            scheme=cell.scheme,
            reason=cell.reason_code,
        )
    return profile


def _scheme_bus_profile(
    scheme: str,
    n_processors: int,
    n_memories: int,
    bus_counts: Sequence[int],
    model: RequestModel,
    **network_kwargs,
) -> BusProfile:
    """Uninstrumented body of :func:`scheme_bus_profile`."""
    if model.n_processors != n_processors:
        raise ConfigurationError(
            f"model has {model.n_processors} processors, network has "
            f"{n_processors}"
        )
    if model.n_memories != n_memories:
        raise ConfigurationError(
            f"model addresses {model.n_memories} modules, network has "
            f"{n_memories}"
        )
    # Arbitration knobs ride along in network_kwargs (the service and
    # the sweep fabric thread them through verbatim) but are consumed
    # here, before the batchable-kwargs check: class weights never
    # change the work-conserving *total* bandwidth, and tenure routes
    # to the fixed-point approximation layer.
    network_kwargs = dict(network_kwargs)
    class_weights = network_kwargs.pop("class_weights", None)
    if class_weights is not None:
        validate_class_weights(class_weights)
    tenure = network_kwargs.pop("tenure", None)
    if tenure is not None:
        tenure = validate_tenure(tenure, "geometric")
        if tenure != 1.0:
            return _tenure_profile(
                scheme, n_processors, n_memories, bus_counts, model,
                tenure, **network_kwargs,
            )
    batchable = _BATCHABLE_KWARGS.get(scheme)
    if batchable is None or set(network_kwargs) - batchable:
        if scheme == "custom":
            unknown = sorted(set(network_kwargs) - batchable)
            raise ConfigurationError(
                f"unknown parameter(s) {unknown} for scheme 'custom'; "
                f"allowed: {sorted(batchable)}"
            )
        return _fallback_profile(
            scheme, n_processors, n_memories, bus_counts, model,
            **network_kwargs,
        )
    valid, skipped = valid_bus_counts(
        scheme, n_memories, bus_counts, **network_kwargs
    )
    profile = BusProfile(values={}, skipped=skipped)
    if not valid:
        return profile
    x = _symmetric_x(model)
    return _PROFILE_EVALUATORS[scheme](
        profile, n_processors, n_memories, valid, model, x, network_kwargs
    )


def _profile_crossbar(profile, n_processors, n_memories, valid, model, x, kwargs):
    # evaluate.analytic_bandwidth always takes the heterogeneous sum.
    xs = model.module_request_probabilities()
    value = float(
        np.sum([validate_probability(float(v), "X_j") for v in xs])
    )
    profile.values = {b: value for b in valid}
    return profile


def _profile_full(profile, n_processors, n_memories, valid, model, x, kwargs):
    if x is not None:
        batch = bandwidth_full_batch(n_memories, valid, x)
    else:
        xs = model.module_request_probabilities()
        excess = tail_excess_all_buses(cached_poisson_binomial_pmf(xs))
        total = float(xs.sum())
        batch = total - excess[np.minimum(valid, n_memories)]
    profile.values = {b: float(v) for b, v in zip(valid, batch)}
    return profile


def _profile_partial(profile, n_processors, n_memories, valid, model, x, kwargs):
    n_groups = kwargs.get("n_groups", 2)
    if x is not None:
        batch = bandwidth_partial_batch(n_memories, valid, n_groups, x)
    else:
        xs = model.module_request_probabilities()
        per_group = n_memories // n_groups
        caps = np.minimum(np.asarray(valid) // n_groups, per_group)
        batch = np.zeros(len(valid))
        for q in range(n_groups):
            group = xs[q * per_group : (q + 1) * per_group]
            excess = tail_excess_all_buses(
                cached_poisson_binomial_pmf(group)
            )
            batch += float(group.sum()) - excess[caps]
    profile.values = {b: float(v) for b, v in zip(valid, batch)}
    return profile


def _profile_single(profile, n_processors, n_memories, valid, model, x, kwargs):
    if x is not None:
        batch = bandwidth_single_batch(n_memories, valid, x)
        profile.values = {b: float(v) for b, v in zip(valid, batch)}
    else:
        xs = model.module_request_probabilities()
        miss_factors = 1.0 - np.asarray(
            [validate_probability(float(v), "X_j") for v in xs]
        )
        for b in valid:
            base, extra = divmod(n_memories, b)
            counts = np.full(b, base)
            counts[:extra] += 1
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            miss = np.multiply.reduceat(miss_factors, starts)
            profile.values[b] = float(b - miss.sum())
    return profile


def _profile_kclass(profile, n_processors, n_memories, valid, model, x, kwargs):
    class_sizes = kwargs.get("class_sizes")
    if class_sizes is not None:
        sizes = [int(s) for s in class_sizes]
        if sum(sizes) != n_memories:
            # build_network would reject every cell; mirror as skips.
            profile.skipped = profile.skipped + [
                SkippedCell(
                    "kclass",
                    b,
                    f"class sizes {sizes} sum to {sum(sizes)}, expected "
                    f"M={n_memories}",
                )
                for b in valid
            ]
            return profile
        request = (
            x if x is not None
            else _kclass_class_probabilities(
                sizes, model.module_request_probabilities()
            )
        )
        batch = bandwidth_kclass_batch(sizes, valid, request)
        profile.values = {b: float(v) for b, v in zip(valid, batch)}
        return profile
    # Default factory layout: K = B equal classes, so the class structure
    # itself changes with B — evaluate per count, sharing class pmfs
    # through the cache (sizes repeat heavily across counts).
    xs = None if x is not None else model.module_request_probabilities()
    for b in valid:
        sizes = equal_class_sizes(n_memories, b)
        request = (
            x if x is not None
            else _kclass_class_probabilities(sizes, xs)
        )
        profile.values[b] = bandwidth_kclass(sizes, b, request)
    return profile


def _profile_custom(profile, n_processors, n_memories, valid, model, x, kwargs):
    """Evaluate a generator spec across bus counts.

    Per count: instantiate the structure, try the recognizer, and route
    recognized cells through the closed-form evaluators above (grouped so
    each recognized ``(scheme, kwargs)`` pays one batched call — values
    are bit-identical to calling :func:`scheme_bus_profile` on the
    recognized scheme directly).  Unrecognized cells use exact
    enumeration (``M <= {exact_max}`` under ``fallback="auto"``) or the
    memoized-matching Monte-Carlo backend, whose seed derives from the
    structure digest so results are reproducible across processes.
    Recognition outcomes feed the ``topology.recognized`` /
    ``topology.fallback`` telemetry counters (surfaced in the obs
    manifest's ``topology`` section).
    """
    from repro.topology.generators import generate_structure
    from repro.topology.recognize import recognize_cached

    spec = kwargs.get("generator")
    if spec is None:
        raise ConfigurationError(
            "scheme 'custom' requires a 'generator' spec "
            "(see repro.topology.generators)"
        )
    fallback_mode = kwargs.get("fallback", "auto")
    if fallback_mode not in ("auto", "exact", "simulate"):
        raise ConfigurationError(
            f"fallback must be 'auto', 'exact' or 'simulate', got {fallback_mode!r}"
        )
    sim_cycles = kwargs.get("sim_cycles", 20_000)
    if isinstance(sim_cycles, bool) or not isinstance(sim_cycles, int) or sim_cycles < 1:
        raise ConfigurationError(
            f"sim_cycles must be a positive integer, got {sim_cycles!r}"
        )
    registry = get_registry()
    recognized_groups: dict[tuple, list[int]] = {}
    generic: list[tuple[int, object]] = []
    for b in valid:
        try:
            structure = generate_structure(spec, n_processors, n_memories, b)
        except ConfigurationError as exc:
            profile.skipped.append(SkippedCell("custom", b, str(exc)))
            continue
        recognition = recognize_cached(structure)
        if recognition is not None and (recognition.module_safe or x is not None):
            key = (recognition.scheme, recognition.network_kwargs)
            recognized_groups.setdefault(key, []).append(b)
            registry.increment("topology.recognized", scheme=recognition.scheme)
        else:
            generic.append((b, structure))
    for (scheme, scheme_kwargs), counts in recognized_groups.items():
        sub = _scheme_bus_profile(
            scheme, n_processors, n_memories, counts, model,
            **{name: value for name, value in scheme_kwargs},
        )
        profile.values.update(sub.values)
        profile.skipped.extend(
            SkippedCell("custom", cell.n_buses, cell.reason)
            for cell in sub.skipped
        )
    for b, structure in generic:
        if fallback_mode == "auto":
            method = "exact" if n_memories <= _EXACT_FALLBACK_MAX else "simulate"
        else:
            method = fallback_mode
        if method == "exact":
            from repro.core.exact import exact_bandwidth
            from repro.topology.structure import StructureNetwork

            profile.values[b] = float(
                exact_bandwidth(StructureNetwork(structure), model)
            )
        else:
            from repro.simulation.structure import simulate_structure_bandwidth

            result = simulate_structure_bandwidth(
                structure, model, n_cycles=sim_cycles
            )
            profile.values[b] = result.bandwidth
        registry.increment("topology.fallback", method=method)
    return profile


_profile_custom.__doc__ = _profile_custom.__doc__.format(
    exact_max=_EXACT_FALLBACK_MAX
)

#: Scheme -> batched profile evaluator; the single dispatch point that
#: replaced the old per-scheme if-chain.
_PROFILE_EVALUATORS = {
    "crossbar": _profile_crossbar,
    "full": _profile_full,
    "partial": _profile_partial,
    "single": _profile_single,
    "kclass": _profile_kclass,
    "custom": _profile_custom,
}


# ----------------------------------------------------------------------
# Priority / burst-tenure approximation layer
# ----------------------------------------------------------------------


def _tenure_profile(
    scheme: str,
    n_processors: int,
    n_memories: int,
    bus_counts: Sequence[int],
    model: RequestModel,
    tenure: float,
    **network_kwargs,
) -> BusProfile:
    """Effective bandwidth under mean tenure ``L`` per bus count.

    The crossbar has no bus contention, so tenure only throttles each
    module's renewal rate (:func:`crossbar_tenure_bandwidth`).  Every
    bus-limited scheme instead solves the free-bus fixed point
    ``T = f(B - (L - 1) T)`` (:func:`effective_bandwidth`) on the
    closed-form profile ``f``, evaluated over *all* feasible counts up
    to the largest requested one so the interpolation has support.
    """
    base = _scheme_bus_profile(
        scheme, n_processors, n_memories, bus_counts, model,
        **network_kwargs,
    )
    if not base.values:
        return base
    if scheme == "crossbar":
        xs = model.module_request_probabilities()
        value = crossbar_tenure_bandwidth(
            [float(v) for v in xs], tenure
        )
        base.values = {b: value for b in base.values}
        return base
    support = _scheme_bus_profile(
        scheme,
        n_processors,
        n_memories,
        list(range(1, max(base.values) + 1)),
        model,
        **network_kwargs,
    )
    base.values = {
        b: effective_bandwidth(support.values, b, tenure)
        for b in base.values
    }
    return base


@dataclasses.dataclass(frozen=True)
class PriorityProfile:
    """Per-class analytic bandwidth of one ``(scheme, B)`` cell.

    Attributes
    ----------
    n_buses:
        The evaluated bus count.
    discipline:
        The arbitration discipline the split models.
    class_weights:
        The criticality class mix.
    tenure:
        Mean burst length ``L``.
    total:
        Class-blind effective bandwidth (grant starts per cycle) —
        identical to :func:`scheme_bus_profile`'s value for the same
        knobs, since class weights never change a work-conserving
        total.
    per_class:
        Per-class bandwidths summing to :attr:`total` exactly.
    effective_buses:
        ``B - (L - 1) * total`` — buses free for new grants on average
        (``B`` for the crossbar, which has no bus contention).
    """

    scheme: str
    n_buses: int
    discipline: str
    class_weights: tuple[float, ...]
    tenure: float
    total: float
    per_class: tuple[float, ...]
    effective_buses: float


def priority_class_profile(
    scheme: str,
    n_processors: int,
    n_memories: int,
    n_buses: int,
    model: RequestModel,
    discipline: str = "rr",
    class_weights: Sequence[float] = (1.0,),
    tenure: float = 1.0,
    **network_kwargs,
) -> PriorityProfile:
    """Analytic per-class bandwidth for one cell under a discipline.

    Under ``"strict"`` priority, classes ``0..c`` together preempt all
    lower traffic, so their joint bandwidth is the base model *thinned*
    to their cumulative weight (``model.with_rate(r * W_c)``) evaluated
    through the same tenure-aware dispatch; per-class shares are the
    telescoping differences (:func:`monotone_class_split`), with the top
    cumulative class pinned to the exact unthinned total so the split
    sums to it bit-for-bit.  The class-blind disciplines (``"rr"``,
    ``"wrr"``, ``"proc"``) serve classes in proportion to their traffic
    in expectation (:func:`proportional_split`) — ``"wrr"``'s bias only
    materializes in overload, which the approximation ignores.

    A single class at unit tenure returns the eq. 1-12 value unchanged:
    the differential wall pins this against the golden tables.
    """
    if discipline not in DISCIPLINES:
        raise ConfigurationError(
            f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
        )
    weights = validate_class_weights(class_weights)
    tenure = validate_tenure(tenure, "geometric")
    profile = scheme_bus_profile(
        scheme,
        n_processors,
        n_memories,
        [n_buses],
        model,
        class_weights=weights,
        tenure=tenure,
        **network_kwargs,
    )
    if n_buses not in profile.values:
        reason = (
            profile.skipped[0].reason
            if profile.skipped
            else f"B={n_buses} is not feasible for scheme {scheme!r}"
        )
        raise ConfigurationError(reason)
    total = profile.values[n_buses]
    if scheme == "crossbar":
        effective_buses = float(n_buses)
    else:
        effective_buses = n_buses - (tenure - 1.0) * total
    if discipline == "strict":
        cumulative_values: list[float] = []
        for cum in cumulative_weights(weights)[:-1]:
            thinned = model.with_rate(model.rate * cum)
            sub = scheme_bus_profile(
                scheme,
                n_processors,
                n_memories,
                [n_buses],
                thinned,
                class_weights=weights,
                tenure=tenure,
                **network_kwargs,
            )
            cumulative_values.append(sub.values[n_buses])
        per_class = monotone_class_split(
            cumulative_values + [total], total
        )
    else:
        per_class = proportional_split(weights, total)
    return PriorityProfile(
        scheme=scheme,
        n_buses=int(n_buses),
        discipline=discipline,
        class_weights=weights,
        tenure=tenure,
        total=float(total),
        per_class=per_class,
        effective_buses=float(effective_buses),
    )


# ----------------------------------------------------------------------
# Re-entrant micro-batch entry point
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class GridCell:
    """One single-cell bandwidth request for :func:`evaluate_cells`.

    ``network_kwargs`` must be a hashable canonical form — a tuple of
    sorted ``(name, value)`` pairs with sequence values converted to
    tuples (what :meth:`from_kwargs` produces).
    """

    scheme: str
    n_processors: int
    n_memories: int
    n_buses: int
    model: RequestModel
    network_kwargs: tuple[tuple[str, object], ...] = ()

    @staticmethod
    def from_kwargs(
        scheme: str,
        n_processors: int,
        n_memories: int,
        n_buses: int,
        model: RequestModel,
        **network_kwargs,
    ) -> "GridCell":
        """Build a cell, canonicalizing ``network_kwargs`` to sorted tuples."""
        canonical = tuple(
            (name, tuple(value) if isinstance(value, (list, tuple)) else value)
            for name, value in sorted(network_kwargs.items())
        )
        return GridCell(
            scheme, int(n_processors), int(n_memories), int(n_buses),
            model, canonical,
        )

    def profile_signature(self) -> tuple:
        """Grouping key: cells equal here share one grid evaluation.

        The request model is identified by object identity — callers that
        want two cells micro-batched together must hand both the *same*
        model instance (the query service's canonical-key cache does
        exactly that).  Identity is the only equality cheap enough for a
        per-request hot path, and it can never conflate distinct models.
        """
        return (
            self.scheme,
            self.n_processors,
            self.n_memories,
            id(self.model),
            self.network_kwargs,
        )


def evaluate_cells(
    cells: Sequence[GridCell],
) -> list[float | SkippedCell]:
    """Evaluate many single cells through as few grid calls as possible.

    The re-entrant micro-batch entry point of the analytic engine: cells
    agreeing on everything but the bus count (same scheme, machine shape,
    request-model *instance* and network kwargs) are grouped and answered
    by **one** :func:`scheme_bus_profile` call over their combined
    bus-count vector.  Results come back aligned with the input: a float
    bandwidth for feasible cells, the auditing :class:`SkippedCell` for
    structurally invalid ones.

    Because every grid kernel is elementwise in the bus count (each
    count's value is read from the same cached pmf with the same
    arithmetic regardless of its companions), a cell's value is
    bit-identical whether it is evaluated alone or sharing a grid call —
    the property the query service's differential suite pins.

    Thread-safety: pure function of its arguments; the only shared state
    underneath is the pmf cache and the telemetry registry, both
    thread-safe, so concurrent callers (one batch flusher per event loop,
    a benchmark harness, a worker pool) can all enter at once.
    """
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(cell.profile_signature(), []).append(index)
    results: list[float | SkippedCell] = [None] * len(cells)  # type: ignore[list-item]
    for indices in groups.values():
        first = cells[indices[0]]
        # Deduplicate bus counts inside the group while keeping one grid
        # call; every member reads its own count back from the profile.
        bus_counts = sorted({cells[i].n_buses for i in indices})
        profile = scheme_bus_profile(
            first.scheme,
            first.n_processors,
            first.n_memories,
            bus_counts,
            first.model,
            **dict(first.network_kwargs),
        )
        skipped_by_bus = {cell.n_buses: cell for cell in profile.skipped}
        for i in indices:
            b = cells[i].n_buses
            if b in profile.values:
                results[i] = profile.values[b]
            else:
                results[i] = skipped_by_bus.get(
                    b,
                    SkippedCell(
                        first.scheme, b,
                        f"B={b} missing from the evaluated profile",
                    ),
                )
    return results
