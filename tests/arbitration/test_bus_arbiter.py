"""Tests for stage-two bus assignment policies."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbitration import assignment_for
from repro.arbitration.bus_arbiter import (
    CrossbarAssignment,
    GroupedBusAssignment,
    MatchingBusAssignment,
    RandomBusAssignment,
    RoundRobinBusAssignment,
    SingleBusAssignment,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.injection import fail_buses
from repro.topology import (
    CrossbarNetwork,
    FullBusMemoryNetwork,
    KClassPartialBusNetwork,
    PartialBusNetwork,
    SingleBusMemoryNetwork,
)


class TestRoundRobin:
    def test_grants_min_of_requests_and_buses(self, rng):
        policy = RoundRobinBusAssignment(8, 3)
        grants = policy.assign([0, 2, 4, 6], rng)
        assert len(grants) == 3

    def test_all_served_when_underloaded(self, rng):
        policy = RoundRobinBusAssignment(8, 4)
        grants = policy.assign([1, 5], rng)
        assert sorted(grants.values()) == [1, 5]

    def test_empty_request_set(self, rng):
        assert RoundRobinBusAssignment(8, 4).assign([], rng) == {}

    def test_pointer_rotates_no_starvation(self, rng):
        # With 3 modules always requesting and 1 bus, each module must be
        # served once every 3 cycles.
        policy = RoundRobinBusAssignment(3, 1)
        served = [next(iter(policy.assign([0, 1, 2], rng).values()))
                  for _ in range(9)]
        assert served == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_reset_restores_pointer(self, rng):
        policy = RoundRobinBusAssignment(4, 1)
        first = policy.assign([0, 1], rng)
        policy.reset()
        assert policy.assign([0, 1], rng) == first

    def test_each_module_at_most_one_bus(self, rng):
        policy = RoundRobinBusAssignment(10, 5)
        grants = policy.assign(list(range(10)), rng)
        assert len(set(grants.values())) == len(grants)

    @given(
        st.sets(st.integers(min_value=0, max_value=9), max_size=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50)
    def test_property_grant_count(self, requested, n_buses):
        rng = np.random.default_rng(0)
        policy = RoundRobinBusAssignment(10, n_buses)
        grants = policy.assign(sorted(requested), rng)
        assert len(grants) == min(len(requested), n_buses)
        assert set(grants.values()) <= requested


class TestRandomAssignment:
    def test_grant_count(self, rng):
        policy = RandomBusAssignment(8, 3)
        for _ in range(20):
            grants = policy.assign([0, 1, 2, 3, 4], rng)
            assert len(grants) == 3
            assert set(grants.values()) <= {0, 1, 2, 3, 4}

    def test_under_capacity_serves_all(self, rng):
        policy = RandomBusAssignment(8, 5)
        assert sorted(policy.assign([2, 6], rng).values()) == [2, 6]


class TestGroupedAssignment:
    def test_requests_stay_in_group_buses(self, rng):
        policy = GroupedBusAssignment(8, 4, 2)
        grants = policy.assign([0, 1, 2, 3], rng)  # all group 0
        assert set(grants) <= {0, 1}
        assert len(grants) == 2

    def test_groups_independent(self, rng):
        policy = GroupedBusAssignment(8, 4, 2)
        grants = policy.assign([0, 4], rng)
        assert grants[0] == 0 or grants[1] == 0
        assert grants[2] == 4 or grants[3] == 4

    def test_per_group_capacity(self, rng):
        policy = GroupedBusAssignment(8, 4, 2)
        # 3 requests in group 0, one in group 1: group 0 capped at 2.
        grants = policy.assign([0, 1, 2, 5], rng)
        assert len(grants) == 3

    def test_rejects_bad_groups(self):
        with pytest.raises(ConfigurationError):
            GroupedBusAssignment(8, 4, 3)
        with pytest.raises(ConfigurationError):
            GroupedBusAssignment(8, 4, 0)

    def test_reset(self, rng):
        policy = GroupedBusAssignment(4, 2, 2)
        first = policy.assign([0, 1], rng)
        policy.reset()
        assert policy.assign([0, 1], rng) == first


class TestSingleAssignment:
    def test_one_grant_per_busy_bus(self, rng):
        policy = SingleBusAssignment([0, 0, 1, 1], 2)
        grants = policy.assign([0, 1, 2], rng)
        assert set(grants) == {0, 1}
        assert grants[0] in (0, 1)
        assert grants[1] == 2

    def test_round_robin_within_bus(self, rng):
        policy = SingleBusAssignment([0, 0], 1)
        served = [policy.assign([0, 1], rng)[0] for _ in range(4)]
        assert served == [0, 1, 0, 1]

    def test_rejects_invalid_module(self, rng):
        policy = SingleBusAssignment([0, 1], 2)
        with pytest.raises(SimulationError):
            policy.assign([5], rng)

    def test_rejects_invalid_wiring(self):
        with pytest.raises(ConfigurationError):
            SingleBusAssignment([0, 3], 2)


class TestCrossbarAssignment:
    def test_serves_everything(self, rng):
        policy = CrossbarAssignment(6, 6)
        grants = policy.assign([0, 2, 4], rng)
        assert sorted(grants.values()) == [0, 2, 4]

    def test_rejects_overflow(self, rng):
        policy = CrossbarAssignment(6, 2)
        with pytest.raises(SimulationError, match="exceed"):
            policy.assign([0, 1, 2], rng)


class TestMatchingAssignment:
    def test_full_matrix_serves_up_to_buses(self, rng):
        matrix = np.ones((6, 3), dtype=bool)
        policy = MatchingBusAssignment(matrix)
        grants = policy.assign([0, 1, 2, 3], rng)
        assert len(grants) == 3

    def test_respects_wiring(self, rng):
        matrix = np.array([[True, False], [False, True]])
        policy = MatchingBusAssignment(matrix)
        grants = policy.assign([0, 1], rng)
        assert grants == {0: 0, 1: 1}

    def test_optimal_beats_greedy_conflict(self, rng):
        # Module 0 reaches both buses, module 1 only bus 0: optimal
        # matching serves both by routing module 0 to bus 1.
        matrix = np.array([[True, True], [True, False]])
        policy = MatchingBusAssignment(matrix)
        grants = policy.assign([0, 1], rng)
        assert len(grants) == 2
        assert grants[0] == 1 and grants[1] == 0

    def test_orphan_module_not_served(self, rng):
        matrix = np.array([[True], [False]])
        policy = MatchingBusAssignment(matrix)
        grants = policy.assign([0, 1], rng)
        assert grants == {0: 0}

    def test_empty(self, rng):
        policy = MatchingBusAssignment(np.ones((3, 2), dtype=bool))
        assert policy.assign([], rng) == {}

    def test_matches_brute_force_max_matching_size(self, rng):
        matrix = np.array(
            [
                [True, True, False],
                [True, False, False],
                [False, True, True],
                [False, False, True],
            ]
        )
        policy = MatchingBusAssignment(matrix)
        for size in range(1, 5):
            for requested in itertools.combinations(range(4), size):
                grants = policy.assign(list(requested), rng)
                # Compare against exhaustive search over assignments.
                best = _brute_force_matching(matrix, requested)
                assert len(grants) == best

    def test_rejects_bad_matrix(self):
        with pytest.raises(ConfigurationError):
            MatchingBusAssignment(np.ones(3, dtype=bool))


def _brute_force_matching(matrix, requested):
    """Largest conflict-free (module, bus) assignment, by brute force."""
    n_buses = matrix.shape[1]
    best = 0
    for buses in itertools.permutations(range(n_buses), min(len(requested), n_buses)):
        for modules in itertools.permutations(requested, len(buses)):
            size = sum(
                1 for m, b in zip(modules, buses) if matrix[m, b]
            )
            # Count only a prefix-consistent assignment: permutations
            # already pair each module with exactly one bus.
            best = max(best, size)
    return best


class TestAssignmentFactory:
    def test_dispatch(self):
        cases = (
            (FullBusMemoryNetwork(8, 8, 4), RoundRobinBusAssignment),
            (SingleBusMemoryNetwork(8, 8, 4), SingleBusAssignment),
            (PartialBusNetwork(8, 8, 4, 2), GroupedBusAssignment),
            (
                KClassPartialBusNetwork(8, 8, 4, class_sizes=[2, 2, 2, 2]),
                __import__(
                    "repro.arbitration.kclass_assignment",
                    fromlist=["KClassBusAssignment"],
                ).KClassBusAssignment,
            ),
            (CrossbarNetwork(8, 8), CrossbarAssignment),
        )
        for network, expected_type in cases:
            assert isinstance(assignment_for(network), expected_type)

    def test_degraded_network_gets_matching(self):
        degraded = fail_buses(FullBusMemoryNetwork(8, 8, 4), {1})
        assert isinstance(assignment_for(degraded), MatchingBusAssignment)

    def test_policy_dimensions(self):
        net = PartialBusNetwork(8, 8, 4, 2)
        policy = assignment_for(net)
        assert policy.n_buses == 4
        assert policy.n_memories == 8
