"""Unit tests for the priority/tenure approximation primitives."""

from __future__ import annotations

import math

import pytest

from repro.core.priority import (
    DISCIPLINES,
    TENURE_DISTRIBUTIONS,
    ArbitrationSpec,
    crossbar_tenure_bandwidth,
    cumulative_weights,
    effective_bandwidth,
    interpolate_profile,
    monotone_class_split,
    proportional_split,
    validate_class_weights,
    validate_tenure,
)
from repro.exceptions import ConfigurationError


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_validate_class_weights_canonicalizes():
    assert validate_class_weights([0.25, 0.75]) == (0.25, 0.75)
    assert validate_class_weights((1,)) == (1.0,)
    # Near-one sums inside the tolerance pass through unscaled.
    weights = validate_class_weights([1 / 3, 1 / 3, 1 / 3])
    assert sum(weights) == pytest.approx(1.0)


@pytest.mark.parametrize(
    "weights",
    [
        [], "abc", 0.5, None, {"a": 1.0},
        [0.5, 0.6], [0.5], [-0.5, 1.5], [0.0, 1.0],
        [float("nan"), 1.0], [float("inf"), 1.0],
        [True, False], ["0.5", "0.5"],
    ],
)
def test_validate_class_weights_rejects(weights):
    with pytest.raises(ConfigurationError):
        validate_class_weights(weights)


def test_validate_tenure_fixed_requires_integral():
    assert validate_tenure(3, "fixed") == 3.0
    assert validate_tenure(1.0, "fixed") == 1.0
    with pytest.raises(ConfigurationError):
        validate_tenure(2.5, "fixed")


def test_validate_tenure_geometric_accepts_fractional_means():
    assert validate_tenure(2.5, "geometric") == 2.5
    assert validate_tenure(1, "geometric") == 1.0


@pytest.mark.parametrize(
    "tenure", [0, -1, 0.99, float("nan"), float("inf"), True, "3", None]
)
def test_validate_tenure_rejects(tenure):
    with pytest.raises(ConfigurationError):
        validate_tenure(tenure, "geometric")


def test_validate_tenure_rejects_unknown_distribution():
    with pytest.raises(ConfigurationError):
        validate_tenure(2, "pareto")


# ----------------------------------------------------------------------
# ArbitrationSpec
# ----------------------------------------------------------------------


def test_spec_defaults_are_degenerate():
    spec = ArbitrationSpec()
    assert spec.discipline == "rr"
    assert spec.n_classes == 1
    assert spec.tenure == 1.0
    assert spec.is_degenerate


def test_spec_non_degenerate_flags():
    assert not ArbitrationSpec(class_weights=(0.5, 0.5)).is_degenerate
    assert not ArbitrationSpec(tenure=2.0).is_degenerate


def test_spec_rejects_bad_discipline_and_distribution():
    with pytest.raises(ConfigurationError):
        ArbitrationSpec(discipline="fifo")
    with pytest.raises(ConfigurationError):
        ArbitrationSpec(tenure=2.0, tenure_dist="zipf")
    assert set(DISCIPLINES) == {"rr", "strict", "wrr", "proc"}
    assert set(TENURE_DISTRIBUTIONS) == {"fixed", "geometric"}


def test_spec_grant_weights_default_descending():
    spec = ArbitrationSpec(
        discipline="wrr", class_weights=(0.2, 0.3, 0.5)
    )
    assert spec.resolved_grant_weights() == (3.0, 2.0, 1.0)
    custom = ArbitrationSpec(
        discipline="wrr",
        class_weights=(0.5, 0.5),
        grant_weights=(5.0, 1.0),
    )
    assert custom.resolved_grant_weights() == (5.0, 1.0)


def test_spec_rejects_mismatched_grant_weights():
    with pytest.raises(ConfigurationError):
        ArbitrationSpec(
            discipline="wrr",
            class_weights=(0.5, 0.5),
            grant_weights=(1.0,),
        )


# ----------------------------------------------------------------------
# Splits and cumulative weights
# ----------------------------------------------------------------------


def test_cumulative_weights_pin_last_to_one():
    cums = cumulative_weights((0.1, 0.2, 0.7))
    assert cums[0] == pytest.approx(0.1)
    assert cums[1] == pytest.approx(0.3)
    assert cums[-1] == 1.0


def test_proportional_split_is_exact():
    split = proportional_split((0.25, 0.75), 2.0)
    assert split == (0.5, 1.5)
    assert sum(split) == 2.0


def test_monotone_class_split_telescopes():
    split = monotone_class_split([1.0, 1.8, 2.0], 2.0)
    assert split == pytest.approx((1.0, 0.8, 0.2))
    assert sum(split) == pytest.approx(2.0)


def test_monotone_class_split_clamps_non_monotone_inputs():
    # A noisy cumulative curve that dips must never yield a negative
    # class share, and the shares must still sum to the exact total.
    split = monotone_class_split([1.5, 1.2, 2.0], 2.0)
    assert all(v >= 0.0 for v in split)
    assert sum(split) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Tenure fixed point
# ----------------------------------------------------------------------

_PROFILE = {1: 0.9, 2: 1.7, 3: 2.3, 4: 2.6}


def test_interpolate_profile_hits_anchors_exactly():
    for b, value in _PROFILE.items():
        assert interpolate_profile(_PROFILE, b) == value
    assert interpolate_profile(_PROFILE, 0) == 0.0
    # Linear between anchors, flat beyond the last.
    assert interpolate_profile(_PROFILE, 1.5) == pytest.approx(1.3)
    assert interpolate_profile(_PROFILE, 9.0) == 2.6


def test_effective_bandwidth_unit_tenure_is_identity():
    for b in _PROFILE:
        assert effective_bandwidth(_PROFILE, b, 1.0) == _PROFILE[b]


def test_effective_bandwidth_solves_fixed_point():
    tenure = 3.0
    for b in _PROFILE:
        t = effective_bandwidth(_PROFILE, b, tenure)
        # T = f(B - (L - 1) T) at the solution.
        residual = t - interpolate_profile(_PROFILE, b - (tenure - 1) * t)
        assert abs(residual) < 1e-9
        assert 0.0 < t < _PROFILE[b]


def test_effective_bandwidth_monotone_in_tenure():
    values = [effective_bandwidth(_PROFILE, 4, L) for L in (1, 2, 4, 8)]
    assert values == sorted(values, reverse=True)


def test_crossbar_tenure_bandwidth():
    probs = [0.5, 0.25, 1.0]
    assert crossbar_tenure_bandwidth(probs, 1.0) == pytest.approx(1.75)
    throttled = crossbar_tenure_bandwidth(probs, 3.0)
    assert throttled == pytest.approx(
        sum(x / (1 + 2 * x) for x in probs)
    )
    assert throttled < 1.75


def test_crossbar_tenure_bandwidth_saturates_below_supply():
    # With M fully-hot modules, each saturated module serves 1/L grants
    # per cycle under burst tenure.
    assert crossbar_tenure_bandwidth([1.0] * 4, 5.0) == pytest.approx(
        4 / 5
    )
