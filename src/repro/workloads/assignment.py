"""Task-to-processor assignment and the request model it induces.

This closes the loop on the paper's motivation (Section III-A): given a
communicating-task workload, a locality-aware assignment places heavy
communicators in the same cluster; the shared-memory traffic this induces
is then *measured* and fitted back to a
:class:`~repro.core.hierarchy.HierarchicalRequestModel`, demonstrating
that the model's ``m_0 > m_1 > ... > m_n`` structure arises from real
scheduling decisions rather than by assumption.

Traffic model: each processor owns one favourite memory module holding
its tasks' private data; a task's communication with a peer task is
realized as requests to the module of the peer's processor.  A tunable
``self_fraction`` of each processor's traffic goes to its own module
(private accesses).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.hierarchy import HierarchicalRequestModel
from repro.core.request_models import MatrixRequestModel
from repro.exceptions import ModelError
from repro.workloads.task_graph import TaskGraph

__all__ = [
    "TaskAssignment",
    "assign_tasks_locality_aware",
    "assign_tasks_round_robin",
    "induced_request_model",
    "fit_hierarchical_fractions",
    "HierarchicalFit",
]


@dataclasses.dataclass(frozen=True)
class TaskAssignment:
    """A mapping of tasks onto processors.

    Attributes
    ----------
    processor_of_task:
        Element ``t`` is the processor hosting task ``t``.
    n_processors:
        Machine size ``N``.
    """

    processor_of_task: tuple[int, ...]
    n_processors: int

    @property
    def n_tasks(self) -> int:
        """Number of assigned tasks."""
        return len(self.processor_of_task)

    def tasks_of_processor(self, processor: int) -> list[int]:
        """Return the tasks hosted by one processor."""
        return [
            t
            for t, p in enumerate(self.processor_of_task)
            if p == processor
        ]

    def load_per_processor(self) -> list[int]:
        """Task count per processor."""
        counts = [0] * self.n_processors
        for p in self.processor_of_task:
            counts[p] += 1
        return counts

    def cross_processor_volume(self, workload: TaskGraph) -> float:
        """Communication weight crossing processor boundaries."""
        return sum(
            float(d["weight"])
            for a, b, d in workload.graph.edges(data=True)
            if self.processor_of_task[a] != self.processor_of_task[b]
        )


def _check_capacity(n_tasks: int, n_processors: int) -> int:
    if n_processors < 1:
        raise ModelError(f"need at least one processor, got {n_processors}")
    if n_tasks < n_processors:
        raise ModelError(
            f"{n_tasks} tasks cannot cover {n_processors} processors; "
            "every processor needs at least one task"
        )
    if n_tasks % n_processors:
        raise ModelError(
            f"balanced assignment requires N={n_processors} to divide "
            f"the task count {n_tasks}"
        )
    return n_tasks // n_processors


def assign_tasks_round_robin(
    workload: TaskGraph, n_processors: int
) -> TaskAssignment:
    """Locality-oblivious baseline: task ``t`` goes to processor ``t % N``."""
    _check_capacity(workload.n_tasks, n_processors)
    return TaskAssignment(
        processor_of_task=tuple(
            t % n_processors for t in range(workload.n_tasks)
        ),
        n_processors=n_processors,
    )


def assign_tasks_locality_aware(
    workload: TaskGraph, n_processors: int
) -> TaskAssignment:
    """Greedy balanced assignment minimizing cross-processor traffic.

    Tasks are visited in decreasing communication volume; each is placed
    on the non-full processor with the highest affinity (total edge weight
    to tasks already there), ties broken toward emptier processors.  This
    is the "task assignment procedure" role the paper describes — it need
    not be optimal, only locality-preserving.
    """
    capacity = _check_capacity(workload.n_tasks, n_processors)
    order = sorted(
        range(workload.n_tasks),
        key=lambda t: -workload.task_volume(t),
    )
    placement: dict[int, int] = {}
    loads = [0] * n_processors
    for task in order:
        best_processor, best_score = None, None
        for processor in range(n_processors):
            if loads[processor] >= capacity:
                continue
            affinity = sum(
                workload.weight(task, other)
                for other, host in placement.items()
                if host == processor
            )
            score = (affinity, -loads[processor])
            if best_score is None or score > best_score:
                best_processor, best_score = processor, score
        placement[task] = best_processor
        loads[best_processor] += 1
    return TaskAssignment(
        processor_of_task=tuple(
            placement[t] for t in range(workload.n_tasks)
        ),
        n_processors=n_processors,
    )


def induced_request_model(
    workload: TaskGraph,
    assignment: TaskAssignment,
    rate: float = 1.0,
    self_fraction: float = 0.5,
) -> MatrixRequestModel:
    """Derive the memory request pattern an assignment induces.

    Processor ``p``'s traffic splits into a ``self_fraction`` share to its
    own module ``p`` plus a share to each module ``q`` proportional to the
    communication weight between ``p``-hosted and ``q``-hosted tasks.
    Processors whose tasks never communicate externally send everything to
    their own module.
    """
    if not 0.0 < self_fraction <= 1.0:
        raise ModelError(
            f"self_fraction must be in (0, 1], got {self_fraction}"
        )
    n = assignment.n_processors
    volume = np.zeros((n, n))
    for a, b, data in workload.graph.edges(data=True):
        pa = assignment.processor_of_task[a]
        pb = assignment.processor_of_task[b]
        if pa != pb:
            w = float(data["weight"])
            volume[pa, pb] += w
            volume[pb, pa] += w
    fractions = np.zeros((n, n))
    for p in range(n):
        external = volume[p].sum()
        if external > 0.0:
            fractions[p] = (1.0 - self_fraction) * volume[p] / external
            fractions[p, p] = self_fraction
        else:
            fractions[p, p] = 1.0
    return MatrixRequestModel(fractions, rate=rate)


@dataclasses.dataclass(frozen=True)
class HierarchicalFit:
    """Result of projecting an observed pattern onto the hierarchy.

    Attributes
    ----------
    model:
        The fitted :class:`HierarchicalRequestModel`.
    aggregate_fractions:
        Observed aggregate traffic share per separation class.
    max_abs_error:
        Largest absolute difference between the observed fraction matrix
        and the fitted model's matrix — how hierarchical the observed
        pattern really is.
    """

    model: HierarchicalRequestModel
    aggregate_fractions: tuple[float, ...]
    max_abs_error: float


def fit_hierarchical_fractions(
    observed: MatrixRequestModel,
    branching: Sequence[int],
) -> HierarchicalFit:
    """Fit an N x N hierarchical model to an observed fraction matrix.

    Averages the observed per-pair fractions within each separation class
    of the given hierarchy, producing the maximum-likelihood-style
    projection onto the model family.
    """
    n = observed.n_processors
    if observed.n_memories != n:
        raise ModelError("hierarchical fitting requires an N x N pattern")
    template = HierarchicalRequestModel._placeholder(
        tuple(branching), None, "nxn", observed.rate
    )
    if template.n_processors != n:
        raise ModelError(
            f"branching {tuple(branching)} describes "
            f"{template.n_processors} processors, pattern has {n}"
        )
    fractions = observed.fraction_matrix()
    n_sep = template.n_separations
    sums = np.zeros(n_sep)
    counts = np.zeros(n_sep, dtype=np.int64)
    for p in range(n):
        for j in range(n):
            s = template.separation(p, j)
            sums[s] += fractions[p, j]
            counts[s] += 1
    per_module = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    # Renormalize: rounding in averaging can leave the total slightly off.
    class_counts = np.asarray(template.module_counts_per_separation())
    total = float((per_module * class_counts).sum())
    if total <= 0.0:
        raise ModelError("observed pattern has no traffic to fit")
    per_module = per_module / total
    fitted = HierarchicalRequestModel.nxn(
        tuple(branching), per_module.tolist(), rate=observed.rate
    )
    error = float(np.abs(fitted.fraction_matrix() - fractions).max())
    aggregates = tuple(float(v) for v in per_module * class_counts)
    return HierarchicalFit(
        model=fitted, aggregate_fractions=aggregates, max_abs_error=error
    )
